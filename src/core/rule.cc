#include "core/rule.h"

#include <algorithm>

#include "common/strings.h"

namespace sphere::core {

namespace {

/// AutoTable layout: table suffix k lives on resource (k mod #resources).
std::vector<DataNode> AutoTableNodes(const std::string& logic_table,
                                     const std::vector<std::string>& resources,
                                     int count) {
  std::vector<DataNode> nodes;
  nodes.reserve(static_cast<size_t>(count));
  for (int k = 0; k < count; ++k) {
    nodes.emplace_back(resources[static_cast<size_t>(k) % resources.size()],
                       logic_table + "_" + std::to_string(k));
  }
  return nodes;
}

}  // namespace

Result<std::unique_ptr<TableRule>> TableRule::Build(
    const TableRuleConfig& config, uint16_t keygen_worker_id) {
  auto rule = std::make_unique<TableRule>();
  rule->config_ = config;

  if (!config.actual_data_nodes.empty()) {
    SPHERE_ASSIGN_OR_RETURN(rule->actual_nodes_,
                            ExpandDataNodes(config.actual_data_nodes));
  } else if (!config.auto_resources.empty() && config.auto_sharding_count > 0) {
    rule->actual_nodes_ = AutoTableNodes(config.logic_table,
                                         config.auto_resources,
                                         config.auto_sharding_count);
  } else {
    return Status::InvalidArgument(
        "table rule " + config.logic_table +
        " needs actual_data_nodes or auto resources + sharding count");
  }

  for (const auto& node : rule->actual_nodes_) {
    if (std::find(rule->data_sources_.begin(), rule->data_sources_.end(),
                  node.data_source) == rule->data_sources_.end()) {
      rule->data_sources_.push_back(node.data_source);
    }
    if (std::find(rule->actual_tables_.begin(), rule->actual_tables_.end(),
                  node.table) == rule->actual_tables_.end()) {
      rule->actual_tables_.push_back(node.table);
    }
    rule->tables_by_ds_[node.data_source].push_back(node.table);
  }

  if (!config.database_strategy.empty()) {
    SPHERE_ASSIGN_OR_RETURN(
        rule->database_algorithm_,
        CreateShardingAlgorithm(config.database_strategy.algorithm_type,
                                config.database_strategy.props));
  }
  if (!config.table_strategy.empty()) {
    SPHERE_ASSIGN_OR_RETURN(
        rule->table_algorithm_,
        CreateShardingAlgorithm(config.table_strategy.algorithm_type,
                                config.table_strategy.props));
  }
  if (!config.keygen_column.empty()) {
    rule->keygen_ = CreateKeyGenerator(config.keygen_type, keygen_worker_id);
    if (rule->keygen_ == nullptr) {
      return Status::NotFound("key generator type " + config.keygen_type);
    }
  }
  return rule;
}

const std::vector<std::string>& TableRule::TablesIn(const std::string& ds) const {
  static const std::vector<std::string> kEmpty;
  auto it = tables_by_ds_.find(ds);
  return it == tables_by_ds_.end() ? kEmpty : it->second;
}

bool TableRule::IsShardingColumn(const std::string& column) const {
  for (const auto& c : config_.database_strategy.columns) {
    if (EqualsIgnoreCase(c, column)) return true;
  }
  for (const auto& c : config_.table_strategy.columns) {
    if (EqualsIgnoreCase(c, column)) return true;
  }
  return false;
}

Result<std::unique_ptr<ShardingRule>> ShardingRule::Build(
    ShardingRuleConfig config) {
  auto rule = std::make_unique<ShardingRule>();
  uint16_t worker = 0;
  for (const auto& table_config : config.tables) {
    SPHERE_ASSIGN_OR_RETURN(std::unique_ptr<TableRule> table,
                            TableRule::Build(table_config, worker++));
    std::string key = ToLower(table_config.logic_table);
    if (rule->tables_.count(key)) {
      return Status::AlreadyExists("duplicate rule for " +
                                   table_config.logic_table);
    }
    rule->tables_[key] = std::move(table);
  }
  // Validate binding groups: same node count and same data sources.
  for (const auto& group : config.binding_groups) {
    const TableRule* first = nullptr;
    for (const auto& name : group) {
      const auto it = rule->tables_.find(ToLower(name));
      if (it == rule->tables_.end()) {
        return Status::InvalidArgument("binding table " + name + " has no rule");
      }
      if (first == nullptr) {
        first = it->second.get();
      } else if (it->second->actual_nodes().size() !=
                 first->actual_nodes().size()) {
        return Status::InvalidArgument(
            "binding tables must shard into the same number of nodes: " + name);
      }
    }
  }
  rule->config_ = std::move(config);
  return rule;
}

const TableRule* ShardingRule::FindTableRule(
    const std::string& logic_table) const {
  auto it = tables_.find(ToLower(logic_table));
  return it == tables_.end() ? nullptr : it->second.get();
}

bool ShardingRule::IsBroadcastTable(const std::string& logic_table) const {
  for (const auto& t : config_.broadcast_tables) {
    if (EqualsIgnoreCase(t, logic_table)) return true;
  }
  return false;
}

bool ShardingRule::IsBinding(const std::string& a, const std::string& b) const {
  for (const auto& group : config_.binding_groups) {
    bool has_a = false, has_b = false;
    for (const auto& name : group) {
      if (EqualsIgnoreCase(name, a)) has_a = true;
      if (EqualsIgnoreCase(name, b)) has_b = true;
    }
    if (has_a && has_b) return true;
  }
  return false;
}

std::vector<std::string> ShardingRule::AllDataSources() const {
  std::set<std::string> set;
  for (const auto& [name, table] : tables_) {
    for (const auto& ds : table->data_sources()) set.insert(ds);
  }
  if (!config_.default_data_source.empty()) {
    set.insert(config_.default_data_source);
  }
  return std::vector<std::string>(set.begin(), set.end());
}

std::vector<std::string> ShardingRule::LogicTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->logic_table());
  return out;
}

}  // namespace sphere::core
