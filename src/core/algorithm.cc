#include "core/algorithm.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace sphere::core {

namespace {

/// Numeric suffix after the last '_', or -1 ("t_user_3" -> 3).
int SuffixOf(const std::string& name) {
  size_t us = name.find_last_of('_');
  if (us == std::string::npos || us + 1 >= name.size()) return -1;
  int v = 0;
  for (size_t i = us + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    v = v * 10 + (name[i] - '0');
  }
  return v;
}

/// Picks the target for a shard index: prefer the one whose numeric suffix
/// equals the index (the naming convention of sharded actual tables),
/// falling back to positional selection.
Result<std::string> PickTarget(const std::vector<std::string>& targets,
                               int64_t index) {
  if (targets.empty()) return Status::RouteError("no sharding targets");
  for (const auto& t : targets) {
    if (SuffixOf(t) == index) return t;
  }
  size_t i = static_cast<size_t>(((index % static_cast<int64_t>(targets.size())) +
                                  static_cast<int64_t>(targets.size())) %
                                 static_cast<int64_t>(targets.size()));
  return targets[i];
}

/// Collects the targets for a contiguous index interval [lo, hi].
std::vector<std::string> PickTargetRange(const std::vector<std::string>& targets,
                                         int64_t lo, int64_t hi) {
  std::vector<std::string> out;
  for (const auto& t : targets) {
    int suffix = SuffixOf(t);
    int64_t idx = suffix >= 0
                      ? suffix
                      : static_cast<int64_t>(&t - targets.data());
    if (idx >= lo && idx <= hi) out.push_back(t);
  }
  if (out.empty()) return targets;  // be safe rather than drop shards
  return out;
}

// ---------------------------------------------------------------------------
// MOD / HASH_MOD
// ---------------------------------------------------------------------------

class ModAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "MOD"; }
  Status Init(const Properties& props) override {
    count_ = props.GetInt("sharding-count", 0);
    return Status::OK();
  }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    int64_t n = count_ > 0 ? count_ : static_cast<int64_t>(targets.size());
    if (n <= 0) return Status::RouteError("MOD: no shards");
    int64_t v = value.ToInt();
    return PickTarget(targets, ((v % n) + n) % n);
  }
  std::vector<std::string> DoRangeSharding(
      const std::vector<std::string>& targets, const std::optional<Value>& low,
      const std::optional<Value>& high) const override {
    int64_t n = count_ > 0 ? count_ : static_cast<int64_t>(targets.size());
    if (low.has_value() && high.has_value() && low->is_int() && high->is_int() &&
        high->AsInt() - low->AsInt() + 1 < n) {
      std::vector<std::string> out;
      for (int64_t v = low->AsInt(); v <= high->AsInt(); ++v) {
        auto t = PickTarget(targets, ((v % n) + n) % n);
        if (t.ok() && std::find(out.begin(), out.end(), *t) == out.end()) {
          out.push_back(*t);
        }
      }
      return out;
    }
    return targets;
  }

 private:
  int64_t count_ = 0;
};

class HashModAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "HASH_MOD"; }
  Status Init(const Properties& props) override {
    count_ = props.GetInt("sharding-count", 0);
    return Status::OK();
  }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    int64_t n = count_ > 0 ? count_ : static_cast<int64_t>(targets.size());
    if (n <= 0) return Status::RouteError("HASH_MOD: no shards");
    uint64_t h = value.is_string() ? HashString(value.AsString())
                                   : Hash64(static_cast<uint64_t>(value.ToInt()));
    return PickTarget(targets, static_cast<int64_t>(h % static_cast<uint64_t>(n)));
  }

 private:
  int64_t count_ = 0;
};

// ---------------------------------------------------------------------------
// Index-mapped range algorithms
// ---------------------------------------------------------------------------

/// Base for algorithms that map a value to a monotone shard index.
class IndexMappedAlgorithm : public ShardingAlgorithm {
 public:
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    return PickTarget(targets, IndexOf(value));
  }
  std::vector<std::string> DoRangeSharding(
      const std::vector<std::string>& targets, const std::optional<Value>& low,
      const std::optional<Value>& high) const override {
    int64_t lo = low.has_value() ? IndexOf(*low) : 0;
    int64_t hi = high.has_value() ? IndexOf(*high) : MaxIndex(targets);
    return PickTargetRange(targets, lo, hi);
  }

 protected:
  virtual int64_t IndexOf(const Value& value) const = 0;
  virtual int64_t MaxIndex(const std::vector<std::string>& targets) const {
    return static_cast<int64_t>(targets.size()) - 1;
  }
};

/// VOLUME_RANGE: fixed-width numeric intervals between a lower and upper
/// bound; values outside the bounds fall into the two edge shards.
class VolumeRangeAlgorithm : public IndexMappedAlgorithm {
 public:
  const char* Type() const override { return "VOLUME_RANGE"; }
  Status Init(const Properties& props) override {
    lower_ = props.GetDouble("range-lower", 0);
    upper_ = props.GetDouble("range-upper", 0);
    volume_ = props.GetDouble("sharding-volume", 1);
    if (volume_ <= 0 || upper_ < lower_) {
      return Status::InvalidArgument("VOLUME_RANGE: bad bounds/volume");
    }
    return Status::OK();
  }

 protected:
  int64_t IndexOf(const Value& value) const override {
    double v = value.ToDouble();
    if (v < lower_) return 0;
    if (v >= upper_) {
      return 1 + static_cast<int64_t>(std::ceil((upper_ - lower_) / volume_));
    }
    return 1 + static_cast<int64_t>((v - lower_) / volume_);
  }

 private:
  double lower_ = 0, upper_ = 0, volume_ = 1;
};

/// BOUNDARY_RANGE: explicit split points, e.g. "10,20,30" -> 4 shards.
class BoundaryRangeAlgorithm : public IndexMappedAlgorithm {
 public:
  const char* Type() const override { return "BOUNDARY_RANGE"; }
  Status Init(const Properties& props) override {
    for (const auto& piece : Split(props.GetString("sharding-ranges"), ',')) {
      std::string t = Trim(piece);
      if (t.empty()) continue;
      boundaries_.push_back(std::strtod(t.c_str(), nullptr));
    }
    if (boundaries_.empty()) {
      return Status::InvalidArgument("BOUNDARY_RANGE: sharding-ranges required");
    }
    if (!std::is_sorted(boundaries_.begin(), boundaries_.end())) {
      return Status::InvalidArgument("BOUNDARY_RANGE: boundaries must ascend");
    }
    return Status::OK();
  }

 protected:
  int64_t IndexOf(const Value& value) const override {
    double v = value.ToDouble();
    return static_cast<int64_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), v) -
        boundaries_.begin());
  }

 private:
  std::vector<double> boundaries_;
};

/// AUTO_INTERVAL: epoch-seconds timestamps in fixed-duration shards.
class AutoIntervalAlgorithm : public IndexMappedAlgorithm {
 public:
  const char* Type() const override { return "AUTO_INTERVAL"; }
  Status Init(const Properties& props) override {
    lower_ = props.GetInt("datetime-lower", 0);
    seconds_ = props.GetInt("sharding-seconds", 86400);
    if (seconds_ <= 0) {
      return Status::InvalidArgument("AUTO_INTERVAL: sharding-seconds > 0");
    }
    return Status::OK();
  }

 protected:
  int64_t IndexOf(const Value& value) const override {
    int64_t v = value.ToInt();
    if (v < lower_) return 0;
    return (v - lower_) / seconds_;
  }

 private:
  int64_t lower_ = 0, seconds_ = 86400;
};

/// INTERVAL: month-granularity intervals over yyyymm keys (the BestPay
/// per-month split of paper §VII-B). Accepts ints (202104) or "2021-04".
class IntervalAlgorithm : public IndexMappedAlgorithm {
 public:
  const char* Type() const override { return "INTERVAL"; }
  Status Init(const Properties& props) override {
    lower_months_ = MonthsOf(Value(props.GetString("datetime-lower", "1970-01")));
    months_per_shard_ = props.GetInt("sharding-months", 1);
    if (months_per_shard_ <= 0) {
      return Status::InvalidArgument("INTERVAL: sharding-months > 0");
    }
    return Status::OK();
  }

 protected:
  int64_t IndexOf(const Value& value) const override {
    int64_t m = MonthsOf(value) - lower_months_;
    if (m < 0) m = 0;
    return m / months_per_shard_;
  }

 private:
  static int64_t MonthsOf(const Value& v) {
    if (v.is_string()) {
      // "yyyy-mm" (a longer date string's prefix also works).
      const std::string& s = v.AsString();
      if (s.size() >= 7 && s[4] == '-') {
        int64_t y = std::strtoll(s.substr(0, 4).c_str(), nullptr, 10);
        int64_t m = std::strtoll(s.substr(5, 2).c_str(), nullptr, 10);
        return y * 12 + (m - 1);
      }
    }
    int64_t i = v.ToInt();  // yyyymm
    return (i / 100) * 12 + (i % 100 - 1);
  }

  int64_t lower_months_ = 0;
  int64_t months_per_shard_ = 1;
};

// ---------------------------------------------------------------------------
// Inline expressions
// ---------------------------------------------------------------------------

/// Evaluates the integer expression inside ${...}: identifiers resolve via
/// `vars`, operators + - * / % and parentheses are supported.
class InlineEvaluator {
 public:
  InlineEvaluator(const std::vector<sql::Token>& tokens,
                  const std::map<std::string, Value>& vars)
      : tokens_(tokens), vars_(vars) {}

  Result<int64_t> Eval() {
    SPHERE_ASSIGN_OR_RETURN(int64_t v, Additive());
    if (tokens_[pos_].type != sql::TokenType::kEof) {
      return Status::InvalidArgument("trailing tokens in inline expression");
    }
    return v;
  }

 private:
  Result<int64_t> Additive() {
    SPHERE_ASSIGN_OR_RETURN(int64_t v, Multiplicative());
    for (;;) {
      if (tokens_[pos_].IsOperator("+")) {
        ++pos_;
        SPHERE_ASSIGN_OR_RETURN(int64_t r, Multiplicative());
        v += r;
      } else if (tokens_[pos_].IsOperator("-")) {
        ++pos_;
        SPHERE_ASSIGN_OR_RETURN(int64_t r, Multiplicative());
        v -= r;
      } else {
        return v;
      }
    }
  }
  Result<int64_t> Multiplicative() {
    SPHERE_ASSIGN_OR_RETURN(int64_t v, Primary());
    for (;;) {
      if (tokens_[pos_].IsOperator("*")) {
        ++pos_;
        SPHERE_ASSIGN_OR_RETURN(int64_t r, Primary());
        v *= r;
      } else if (tokens_[pos_].IsOperator("/")) {
        ++pos_;
        SPHERE_ASSIGN_OR_RETURN(int64_t r, Primary());
        if (r == 0) return Status::InvalidArgument("inline division by zero");
        v /= r;
      } else if (tokens_[pos_].IsOperator("%")) {
        ++pos_;
        SPHERE_ASSIGN_OR_RETURN(int64_t r, Primary());
        if (r == 0) return Status::InvalidArgument("inline modulo by zero");
        v = ((v % r) + r) % r;
      } else {
        return v;
      }
    }
  }
  Result<int64_t> Primary() {
    const sql::Token& t = tokens_[pos_];
    if (t.type == sql::TokenType::kIntLiteral) {
      ++pos_;
      return t.int_value;
    }
    if (t.type == sql::TokenType::kIdentifier ||
        t.type == sql::TokenType::kKeyword) {
      ++pos_;
      for (const auto& [name, value] : vars_) {
        if (EqualsIgnoreCase(name, t.text)) return value.ToInt();
      }
      return Status::InvalidArgument("unknown inline variable: " + t.text);
    }
    if (t.IsOperator("(")) {
      ++pos_;
      SPHERE_ASSIGN_OR_RETURN(int64_t v, Additive());
      if (!tokens_[pos_].IsOperator(")")) {
        return Status::InvalidArgument("expected ) in inline expression");
      }
      ++pos_;
      return v;
    }
    if (t.IsOperator("-")) {
      ++pos_;
      SPHERE_ASSIGN_OR_RETURN(int64_t v, Primary());
      return -v;
    }
    return Status::InvalidArgument("bad inline expression token: " + t.text);
  }

  const std::vector<sql::Token>& tokens_;
  const std::map<std::string, Value>& vars_;
  size_t pos_ = 0;
};

/// Renders an inline sharding expression like "t_user_${uid % 2}".
Result<std::string> RenderInline(const std::string& expression,
                                 const std::map<std::string, Value>& vars) {
  std::string out;
  size_t pos = 0;
  while (pos < expression.size()) {
    size_t open = expression.find("${", pos);
    if (open == std::string::npos) {
      out += expression.substr(pos);
      break;
    }
    out += expression.substr(pos, open - pos);
    size_t close = expression.find('}', open);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated ${ in " + expression);
    }
    std::string inner = expression.substr(open + 2, close - open - 2);
    sql::Lexer lexer(inner);
    SPHERE_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, lexer.Tokenize());
    InlineEvaluator eval(tokens, vars);
    SPHERE_ASSIGN_OR_RETURN(int64_t v, eval.Eval());
    out += std::to_string(v);
    pos = close + 1;
  }
  return out;
}

/// INLINE: a Groovy-style expression over the (single) sharding column, e.g.
/// algorithm-expression = "t_user_${uid % 2}".
class InlineAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "INLINE"; }
  Status Init(const Properties& props) override {
    expression_ = props.GetString("algorithm-expression");
    column_ = props.GetString("sharding-column", "value");
    if (expression_.empty()) {
      return Status::InvalidArgument("INLINE: algorithm-expression required");
    }
    return Status::OK();
  }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    std::map<std::string, Value> vars{{column_, value}, {"value", value}};
    SPHERE_ASSIGN_OR_RETURN(std::string name, RenderInline(expression_, vars));
    for (const auto& t : targets) {
      if (EqualsIgnoreCase(t, name)) return t;
    }
    return Status::RouteError("INLINE: computed target " + name +
                              " not among actual targets");
  }

 private:
  std::string expression_;
  std::string column_;
};

/// COMPLEX_INLINE: an inline expression over several sharding columns.
class ComplexInlineAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "COMPLEX_INLINE"; }
  Status Init(const Properties& props) override {
    expression_ = props.GetString("algorithm-expression");
    if (expression_.empty()) {
      return Status::InvalidArgument("COMPLEX_INLINE: algorithm-expression required");
    }
    return Status::OK();
  }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    return DoComplexSharding(targets, {{"value", value}});
  }
  Result<std::string> DoComplexSharding(
      const std::vector<std::string>& targets,
      const std::map<std::string, Value>& values) const override {
    SPHERE_ASSIGN_OR_RETURN(std::string name, RenderInline(expression_, values));
    for (const auto& t : targets) {
      if (EqualsIgnoreCase(t, name)) return t;
    }
    return Status::RouteError("COMPLEX_INLINE: computed target " + name +
                              " not among actual targets");
  }

 private:
  std::string expression_;
};

/// HINT_INLINE: shards by a value supplied through the HintManager rather
/// than by any SQL column.
class HintInlineAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "HINT_INLINE"; }
  Status Init(const Properties& props) override {
    expression_ = props.GetString("algorithm-expression");  // may be empty
    return Status::OK();
  }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    if (expression_.empty()) {
      int64_t n = static_cast<int64_t>(targets.size());
      if (n == 0) return Status::RouteError("HINT_INLINE: no targets");
      return PickTarget(targets, ((value.ToInt() % n) + n) % n);
    }
    std::map<std::string, Value> vars{{"value", value}};
    SPHERE_ASSIGN_OR_RETURN(std::string name, RenderInline(expression_, vars));
    for (const auto& t : targets) {
      if (EqualsIgnoreCase(t, name)) return t;
    }
    return Status::RouteError("HINT_INLINE: computed target " + name);
  }

 private:
  std::string expression_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct AlgorithmRegistry {
  Mutex mu{LockRank::kCore, "core/algorithm_registry"};
  std::map<std::string, ShardingAlgorithmFactory> factories
      SPHERE_GUARDED_BY(mu);
};

AlgorithmRegistry& GetRegistry() {
  static AlgorithmRegistry* registry = [] {
    // lint-exempt(raw-alloc): intentionally leaked process-lifetime singleton
    auto* r = new AlgorithmRegistry();
    r->factories["MOD"] = [] { return std::make_unique<ModAlgorithm>(); };
    r->factories["HASH_MOD"] = [] { return std::make_unique<HashModAlgorithm>(); };
    r->factories["VOLUME_RANGE"] = [] {
      return std::make_unique<VolumeRangeAlgorithm>();
    };
    r->factories["BOUNDARY_RANGE"] = [] {
      return std::make_unique<BoundaryRangeAlgorithm>();
    };
    r->factories["AUTO_INTERVAL"] = [] {
      return std::make_unique<AutoIntervalAlgorithm>();
    };
    r->factories["INTERVAL"] = [] { return std::make_unique<IntervalAlgorithm>(); };
    r->factories["INLINE"] = [] { return std::make_unique<InlineAlgorithm>(); };
    r->factories["COMPLEX_INLINE"] = [] {
      return std::make_unique<ComplexInlineAlgorithm>();
    };
    r->factories["HINT_INLINE"] = [] {
      return std::make_unique<HintInlineAlgorithm>();
    };
    return r;
  }();
  return *registry;
}

/// CLASS_BASED delegates to another registered type named by
/// "algorithm-class-name" — the C++ analog of ShardingSphere's reflection-
/// instantiated user classes.
class ClassBasedAlgorithm : public ShardingAlgorithm {
 public:
  const char* Type() const override { return "CLASS_BASED"; }
  Status Init(const Properties& props) override {
    std::string name = props.GetString("algorithm-class-name");
    if (name.empty()) {
      return Status::InvalidArgument("CLASS_BASED: algorithm-class-name required");
    }
    auto delegate = CreateShardingAlgorithm(name, props);
    if (!delegate.ok()) return delegate.status();
    delegate_ = std::move(delegate).value();
    return Status::OK();
  }
  Result<std::string> DoSharding(const std::vector<std::string>& targets,
                                 const Value& value) const override {
    return delegate_->DoSharding(targets, value);
  }
  std::vector<std::string> DoRangeSharding(
      const std::vector<std::string>& targets, const std::optional<Value>& low,
      const std::optional<Value>& high) const override {
    return delegate_->DoRangeSharding(targets, low, high);
  }
  Result<std::string> DoComplexSharding(
      const std::vector<std::string>& targets,
      const std::map<std::string, Value>& values) const override {
    return delegate_->DoComplexSharding(targets, values);
  }

 private:
  std::unique_ptr<ShardingAlgorithm> delegate_;
};

}  // namespace

Status RegisterShardingAlgorithmFactory(const std::string& type,
                                        ShardingAlgorithmFactory factory) {
  auto& reg = GetRegistry();
  MutexLock lk(reg.mu);
  std::string key = ToUpper(type);
  if (key == "CLASS_BASED" || reg.factories.count(key)) {
    return Status::AlreadyExists("algorithm type " + key);
  }
  reg.factories[key] = std::move(factory);
  return Status::OK();
}

Result<std::unique_ptr<ShardingAlgorithm>> CreateShardingAlgorithm(
    const std::string& type, const Properties& props) {
  std::string key = ToUpper(type);
  std::unique_ptr<ShardingAlgorithm> algo;
  if (key == "CLASS_BASED") {
    algo = std::make_unique<ClassBasedAlgorithm>();
  } else {
    auto& reg = GetRegistry();
    MutexLock lk(reg.mu);
    auto it = reg.factories.find(key);
    if (it == reg.factories.end()) {
      return Status::NotFound("sharding algorithm type " + key);
    }
    algo = it->second();
  }
  SPHERE_RETURN_NOT_OK(algo->Init(props));
  return algo;
}

std::vector<std::string> ListShardingAlgorithmTypes() {
  auto& reg = GetRegistry();
  MutexLock lk(reg.mu);
  std::vector<std::string> out;
  out.reserve(reg.factories.size() + 1);
  for (const auto& [name, f] : reg.factories) out.push_back(name);
  out.push_back("CLASS_BASED");
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sphere::core
