#include "features/guard.h"

namespace sphere::features {

namespace {

/// Process-wide totals across all breaker/throttle instances; resolved once
/// (registry pointers are stable for the process lifetime).
metrics::Counter* BreakerRejectedTotal() {
  static metrics::Counter* c =
      metrics::Registry::Instance().GetCounter("guard.breaker.rejected");
  return c;
}
metrics::Counter* BreakerTripsTotal() {
  static metrics::Counter* c =
      metrics::Registry::Instance().GetCounter("guard.breaker.trips");
  return c;
}
metrics::Counter* ThrottleRejectedTotal() {
  static metrics::Counter* c =
      metrics::Registry::Instance().GetCounter("guard.throttle.rejected");
  return c;
}

}  // namespace

void CircuitBreaker::CountTrip() { BreakerTripsTotal()->Increment(); }

Status CircuitBreaker::AfterRewrite(const sql::Statement& stmt,
                                    std::vector<core::SQLUnit>* units,
                                    bool in_transaction) {
  (void)stmt;
  (void)units;
  (void)in_transaction;
  MutexLock lk(mu_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen:
      if (NowMicros() - opened_at_us_ >= open_duration_us_) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = false;
        // fall through to half-open handling
      } else {
        rejected_.Increment();
        BreakerRejectedTotal()->Increment();
        return Status::Unavailable("circuit breaker is open");
      }
      [[fallthrough]];
    case State::kHalfOpen:
      if (probe_in_flight_) {
        rejected_.Increment();
        BreakerRejectedTotal()->Increment();
        return Status::Unavailable("circuit breaker half-open: probe in flight");
      }
      probe_in_flight_ = true;
      return Status::OK();
  }
  return Status::OK();
}

Result<engine::ExecResult> CircuitBreaker::DecorateResult(
    const sql::Statement& stmt, engine::ExecResult result) {
  (void)stmt;
  MutexLock lk(mu_);
  // A decorated result means the statement succeeded.
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    probe_in_flight_ = false;
  }
  return result;
}

void CircuitBreaker::RecordFailure() {
  MutexLock lk(mu_);
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;
    opened_at_us_ = NowMicros();
    probe_in_flight_ = false;
    CountTrip();
    return;
  }
  if (++consecutive_failures_ >= failure_threshold_ && state_ == State::kClosed) {
    state_ = State::kOpen;
    opened_at_us_ = NowMicros();
    CountTrip();
  }
}

void CircuitBreaker::Trip() {
  MutexLock lk(mu_);
  if (state_ != State::kOpen) CountTrip();
  state_ = State::kOpen;
  opened_at_us_ = NowMicros();
}

void CircuitBreaker::Reset() {
  MutexLock lk(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lk(mu_);
  return state_;
}

bool RateThrottle::TryAcquire() {
  MutexLock lk(mu_);
  int64_t now = NowMicros();
  tokens_ += rate_ * static_cast<double>(now - last_refill_us_) / 1e6;
  if (tokens_ > burst_) tokens_ = burst_;
  last_refill_us_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

Status RateThrottle::AfterRewrite(const sql::Statement& stmt,
                                  std::vector<core::SQLUnit>* units,
                                  bool in_transaction) {
  (void)stmt;
  (void)units;
  (void)in_transaction;
  if (TryAcquire()) return Status::OK();
  throttled_.Increment();
  ThrottleRejectedTotal()->Increment();
  return Status::ResourceExhausted("statement rate limit exceeded");
}

}  // namespace sphere::features
