#ifndef SPHERE_FEATURES_GUARD_H_
#define SPHERE_FEATURES_GUARD_H_

#include <atomic>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "core/runtime.h"

namespace sphere::features {

/// Circuit breaking (paper §IV-C): when the backend misbehaves, the breaker
/// opens and statements fail fast instead of piling onto the data sources.
/// Classic three-state breaker: closed -> (failures >= threshold) open ->
/// (cool-down elapsed) half-open -> one probe decides.
class CircuitBreaker : public core::StatementInterceptor {
 public:
  CircuitBreaker(int failure_threshold, int64_t open_duration_ms)
      : failure_threshold_(failure_threshold),
        open_duration_us_(open_duration_ms * 1000) {}

  enum class State { kClosed, kOpen, kHalfOpen };

  Status AfterRewrite(const sql::Statement& stmt,
                      std::vector<core::SQLUnit>* units,
                      bool in_transaction) override;
  Result<engine::ExecResult> DecorateResult(const sql::Statement& stmt,
                                            engine::ExecResult result) override;

  /// Records an execution failure (callers report errors the pipeline saw).
  void RecordFailure() SPHERE_EXCLUDES(mu_);
  /// Manual controls (RAL-style administration).
  void Trip() SPHERE_EXCLUDES(mu_);
  void Reset() SPHERE_EXCLUDES(mu_);

  State state() const SPHERE_EXCLUDES(mu_);
  /// Per-instance shim over the registry counter `guard.breaker.rejected`.
  int64_t rejected_statements() const { return rejected_.value(); }

 private:
  const int failure_threshold_;
  const int64_t open_duration_us_;
  /// Registers on-open accounting into the process-wide counters
  /// `guard.breaker.trips` / `guard.breaker.rejected` (DESIGN.md §13).
  void CountTrip() SPHERE_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kGovernor, "features/guard.breaker"};
  State state_ SPHERE_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ SPHERE_GUARDED_BY(mu_) = 0;
  int64_t opened_at_us_ SPHERE_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ SPHERE_GUARDED_BY(mu_) = false;
  // analyze-exempt(guarded-by): internally synchronized (striped atomics)
  metrics::Counter rejected_;
};

/// Request throttling (paper §IV-C): a token bucket caps the statement rate;
/// excess requests are rejected with ResourceExhausted.
class RateThrottle : public core::StatementInterceptor {
 public:
  /// `rate_per_second` tokens refill continuously up to `burst`.
  RateThrottle(double rate_per_second, double burst)
      : rate_(rate_per_second), burst_(burst), tokens_(burst),
        last_refill_us_(NowMicros()) {}

  Status AfterRewrite(const sql::Statement& stmt,
                      std::vector<core::SQLUnit>* units,
                      bool in_transaction) override;

  /// Per-instance shim over the registry counter `guard.throttle.rejected`.
  int64_t throttled_statements() const { return throttled_.value(); }

 private:
  bool TryAcquire() SPHERE_EXCLUDES(mu_);

  const double rate_;
  const double burst_;
  Mutex mu_{LockRank::kGovernor, "features/guard.throttle"};
  double tokens_ SPHERE_GUARDED_BY(mu_);
  int64_t last_refill_us_ SPHERE_GUARDED_BY(mu_);
  // analyze-exempt(guarded-by): internally synchronized (striped atomics)
  metrics::Counter throttled_;
};

}  // namespace sphere::features

#endif  // SPHERE_FEATURES_GUARD_H_
