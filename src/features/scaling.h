#ifndef SPHERE_FEATURES_SCALING_H_
#define SPHERE_FEATURES_SCALING_H_

#include <string>

#include "core/runtime.h"

namespace sphere::features {

/// Result of a completed scaling job.
struct ScalingReport {
  size_t rows_migrated = 0;
  size_t source_nodes = 0;
  size_t target_nodes = 0;
  bool consistency_ok = false;
  uint64_t source_checksum = 0;
  uint64_t target_checksum = 0;
};

/// The Scaling feature (paper §IV-C, Table I "Scale"): reshards a logic
/// table onto a new layout without taking the table offline for reads.
///
/// Phases (modeled on the original's scaling job):
///   1. prepare  — compile the target rule and create the target physical
///                 tables (which must not collide with source data nodes);
///   2. inventory — copy every row, routing it by the *target* rule;
///   3. check    — row counts and an order-independent checksum must match;
///   4. switch   — atomically install the new rule into the runtime.
/// On a failed check the target tables are dropped and the rule is kept.
class ScalingJob {
 public:
  ScalingJob(core::ShardingRuntime* runtime, std::string logic_table,
             core::TableRuleConfig target_config)
      : runtime_(runtime), logic_table_(std::move(logic_table)),
        target_config_(std::move(target_config)) {}

  /// Runs all phases synchronously.
  Result<ScalingReport> Run();

 private:
  core::ShardingRuntime* runtime_;
  std::string logic_table_;
  core::TableRuleConfig target_config_;
};

}  // namespace sphere::features

#endif  // SPHERE_FEATURES_SCALING_H_
