#include "features/encrypt.h"

#include "common/strings.h"

namespace sphere::features {

EncryptInterceptor::EncryptInterceptor(
    std::vector<EncryptColumnConfig> columns) {
  for (auto& c : columns) {
    entries_.push_back(
        Entry{c.table, c.column, std::make_unique<Aes128>(c.key)});
  }
}

const EncryptInterceptor::Entry* EncryptInterceptor::Find(
    const std::string& table, const std::string& column) const {
  for (const auto& e : entries_) {
    if (EqualsIgnoreCase(e.table, table) && EqualsIgnoreCase(e.column, column)) {
      return &e;
    }
  }
  return nullptr;
}

const EncryptInterceptor::Entry* EncryptInterceptor::FindByColumn(
    const std::string& column) const {
  const Entry* found = nullptr;
  for (const auto& e : entries_) {
    if (EqualsIgnoreCase(e.column, column)) {
      if (found != nullptr) return nullptr;  // ambiguous
      found = &e;
    }
  }
  return found;
}

Value EncryptInterceptor::EncryptValue(const Entry& entry, const Value& v) const {
  if (v.is_null()) return v;
  return Value(entry.cipher->EncryptToHex(v.ToString()));
}

Result<std::string> EncryptInterceptor::Encrypt(
    const std::string& table, const std::string& column,
    const std::string& plaintext) const {
  const Entry* e = Find(table, column);
  if (e == nullptr) {
    return Status::NotFound("no encrypt rule for " + table + "." + column);
  }
  return e->cipher->EncryptToHex(plaintext);
}

void EncryptInterceptor::RewriteExpr(sql::Expr* expr,
                                     const std::string& default_table,
                                     std::vector<Value>* params) const {
  if (expr == nullptr) return;
  auto entry_for = [&](const sql::Expr* col_expr) -> const Entry* {
    if (col_expr->kind() != sql::ExprKind::kColumnRef) return nullptr;
    const auto* c = static_cast<const sql::ColumnRefExpr*>(col_expr);
    if (!c->table.empty()) {
      const Entry* e = Find(c->table, c->column);
      if (e != nullptr) return e;
    }
    if (!default_table.empty()) {
      const Entry* e = Find(default_table, c->column);
      if (e != nullptr) return e;
    }
    return c->table.empty() ? FindByColumn(c->column) : nullptr;
  };
  auto encrypt_const = [&](sql::ExprPtr* slot, const Entry& entry) {
    if ((*slot)->kind() == sql::ExprKind::kLiteral) {
      auto* lit = static_cast<sql::LiteralExpr*>(slot->get());
      lit->value = EncryptValue(entry, lit->value);
    } else if ((*slot)->kind() == sql::ExprKind::kParam) {
      int idx = static_cast<const sql::ParamExpr*>(slot->get())->index;
      if (idx >= 0 && static_cast<size_t>(idx) < params->size()) {
        (*params)[static_cast<size_t>(idx)] =
            EncryptValue(entry, (*params)[static_cast<size_t>(idx)]);
      }
    }
  };

  switch (expr->kind()) {
    case sql::ExprKind::kBinary: {
      auto* b = static_cast<sql::BinaryExpr*>(expr);
      if (b->op == sql::BinaryOp::kEq || b->op == sql::BinaryOp::kNe) {
        if (const Entry* e = entry_for(b->left.get())) {
          encrypt_const(&b->right, *e);
          return;
        }
        if (const Entry* e = entry_for(b->right.get())) {
          encrypt_const(&b->left, *e);
          return;
        }
      }
      RewriteExpr(b->left.get(), default_table, params);
      RewriteExpr(b->right.get(), default_table, params);
      break;
    }
    case sql::ExprKind::kIn: {
      auto* in = static_cast<sql::InExpr*>(expr);
      if (const Entry* e = entry_for(in->expr.get())) {
        for (auto& item : in->list) encrypt_const(&item, *e);
        return;
      }
      for (auto& item : in->list) RewriteExpr(item.get(), default_table, params);
      break;
    }
    case sql::ExprKind::kUnary:
      RewriteExpr(static_cast<sql::UnaryExpr*>(expr)->child.get(), default_table,
                  params);
      break;
    default:
      break;
  }
}

Result<sql::StatementPtr> EncryptInterceptor::BeforeRoute(
    const sql::Statement& stmt, std::vector<Value>* params) {
  switch (stmt.kind()) {
    case sql::StatementKind::kInsert: {
      const auto& ins = static_cast<const sql::InsertStatement&>(stmt);
      // Is any inserted column encrypted?
      bool relevant = false;
      for (const auto& col : ins.columns) {
        if (Find(ins.table.name, col) != nullptr) relevant = true;
      }
      if (!relevant) return sql::StatementPtr(nullptr);
      auto clone = stmt.Clone();
      auto* mutable_ins = static_cast<sql::InsertStatement*>(clone.get());
      for (size_t c = 0; c < mutable_ins->columns.size(); ++c) {
        const Entry* e = Find(ins.table.name, mutable_ins->columns[c]);
        if (e == nullptr) continue;
        for (auto& row : mutable_ins->rows) {
          if (c >= row.size()) continue;
          if (row[c]->kind() == sql::ExprKind::kLiteral) {
            auto* lit = static_cast<sql::LiteralExpr*>(row[c].get());
            lit->value = EncryptValue(*e, lit->value);
          } else if (row[c]->kind() == sql::ExprKind::kParam) {
            int idx = static_cast<const sql::ParamExpr*>(row[c].get())->index;
            if (idx >= 0 && static_cast<size_t>(idx) < params->size()) {
              (*params)[static_cast<size_t>(idx)] =
                  EncryptValue(*e, (*params)[static_cast<size_t>(idx)]);
            }
          }
        }
      }
      return clone;
    }
    case sql::StatementKind::kUpdate: {
      const auto& up = static_cast<const sql::UpdateStatement&>(stmt);
      auto clone = stmt.Clone();
      auto* mutable_up = static_cast<sql::UpdateStatement*>(clone.get());
      bool touched = false;
      for (auto& a : mutable_up->assignments) {
        const Entry* e = Find(up.table.name, a.column);
        if (e == nullptr) continue;
        touched = true;
        if (a.value->kind() == sql::ExprKind::kLiteral) {
          auto* lit = static_cast<sql::LiteralExpr*>(a.value.get());
          lit->value = EncryptValue(*e, lit->value);
        } else if (a.value->kind() == sql::ExprKind::kParam) {
          int idx = static_cast<const sql::ParamExpr*>(a.value.get())->index;
          if (idx >= 0 && static_cast<size_t>(idx) < params->size()) {
            (*params)[static_cast<size_t>(idx)] =
                EncryptValue(*e, (*params)[static_cast<size_t>(idx)]);
          }
        }
      }
      RewriteExpr(mutable_up->where.get(), up.table.name, params);
      (void)touched;  // the WHERE may have been rewritten even when no
                      // assignment was: always use the clone
      return clone;
    }
    case sql::StatementKind::kSelect: {
      const auto& sel = static_cast<const sql::SelectStatement&>(stmt);
      if (sel.where == nullptr || sel.from.empty()) {
        return sql::StatementPtr(nullptr);
      }
      auto clone = stmt.Clone();
      auto* mutable_sel = static_cast<sql::SelectStatement*>(clone.get());
      RewriteExpr(mutable_sel->where.get(), sel.from[0].name, params);
      return clone;
    }
    case sql::StatementKind::kDelete: {
      const auto& del = static_cast<const sql::DeleteStatement&>(stmt);
      if (del.where == nullptr) return sql::StatementPtr(nullptr);
      auto clone = stmt.Clone();
      auto* mutable_del = static_cast<sql::DeleteStatement*>(clone.get());
      RewriteExpr(mutable_del->where.get(), del.table.name, params);
      return clone;
    }
    default:
      return sql::StatementPtr(nullptr);
  }
}

Result<engine::ExecResult> EncryptInterceptor::DecorateResult(
    const sql::Statement& stmt, engine::ExecResult result) {
  if (!result.is_query || stmt.kind() != sql::StatementKind::kSelect) {
    return result;
  }
  const auto& sel = static_cast<const sql::SelectStatement&>(stmt);
  // Tables involved: decrypt output columns whose label matches an encrypted
  // column of one of them.
  std::vector<const Entry*> output_entries;
  const auto& columns = result.result_set->columns();
  bool any = false;
  for (const auto& label : columns) {
    const Entry* found = nullptr;
    for (const sql::TableRef* t : sel.AllTables()) {
      if (const Entry* e = Find(t->name, label)) {
        found = e;
        break;
      }
    }
    output_entries.push_back(found);
    any = any || found != nullptr;
  }
  if (!any) return result;

  std::vector<Row> rows = engine::DrainResultSet(result.result_set.get());
  for (auto& row : rows) {
    for (size_t i = 0; i < row.size() && i < output_entries.size(); ++i) {
      if (output_entries[i] == nullptr || !row[i].is_string()) continue;
      std::string plain;
      if (output_entries[i]->cipher->DecryptFromHex(row[i].AsString(), &plain)) {
        row[i] = Value(std::move(plain));
      }
    }
  }
  return engine::ExecResult::Query(std::make_unique<engine::VectorResultSet>(
      columns, std::move(rows)));
}

}  // namespace sphere::features
