#include "features/readwrite.h"

#include "common/strings.h"

namespace sphere::features {

namespace {
/// Write fan-out of the statement currently executing on this thread.
thread_local int tls_write_fanout = 1;
}  // namespace

const ReadWriteSplitConfig::Group* ReadWriteSplitInterceptor::GroupOf(
    const std::string& ds) const {
  for (const auto& g : config_.groups) {
    if (EqualsIgnoreCase(g.write_data_source, ds)) return &g;
  }
  return nullptr;
}

std::string ReadWriteSplitInterceptor::PickReplica(
    const ReadWriteSplitConfig::Group& group) {
  if (group.read_data_sources.empty()) return group.write_data_source;
  if (EqualsIgnoreCase(group.load_balancer, "RANDOM")) {
    MutexLock lk(rng_mu_);
    return group.read_data_sources[static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(group.read_data_sources.size()) - 1))];
  }
  if (EqualsIgnoreCase(group.load_balancer, "WEIGHT") &&
      group.weights.size() == group.read_data_sources.size()) {
    int total = 0;
    for (int w : group.weights) total += w;
    int64_t pick;
    {
      MutexLock lk(rng_mu_);
      pick = rng_.Uniform(1, total);
    }
    for (size_t i = 0; i < group.weights.size(); ++i) {
      pick -= group.weights[i];
      if (pick <= 0) return group.read_data_sources[i];
    }
    return group.read_data_sources.back();
  }
  // ROUND_ROBIN default.
  uint64_t n = round_robin_.fetch_add(1);
  return group.read_data_sources[n % group.read_data_sources.size()];
}

Status ReadWriteSplitInterceptor::AfterRewrite(
    const sql::Statement& stmt, std::vector<core::SQLUnit>* units,
    bool in_transaction) {
  bool is_read = stmt.kind() == sql::StatementKind::kSelect;
  if (is_read &&
      static_cast<const sql::SelectStatement&>(stmt).for_update) {
    is_read = false;  // FOR UPDATE must see the primary
  }
  // Reads inside a transaction stay on the primary for consistency.
  if (is_read && in_transaction) return Status::OK();

  if (is_read) {
    for (auto& unit : *units) {
      const auto* group = GroupOf(unit.data_source);
      if (group == nullptr) continue;
      std::string replica = PickReplica(*group);
      if (!EqualsIgnoreCase(replica, unit.data_source)) {
        unit.data_source = replica;
        replica_reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return Status::OK();
  }

  tls_write_fanout = 1;
  if (!config_.replicate_writes) return Status::OK();
  // Mirror each write unit onto the group's replicas.
  size_t before = units->size();
  std::vector<core::SQLUnit> mirrored;
  for (const auto& unit : *units) {
    const auto* group = GroupOf(unit.data_source);
    if (group == nullptr) continue;
    for (const auto& replica : group->read_data_sources) {
      core::SQLUnit copy = unit;
      copy.data_source = replica;
      mirrored.push_back(std::move(copy));
      replicated_writes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  units->insert(units->end(), std::make_move_iterator(mirrored.begin()),
                std::make_move_iterator(mirrored.end()));
  if (before > 0) {
    tls_write_fanout = static_cast<int>(units->size() / before);
    if (tls_write_fanout < 1) tls_write_fanout = 1;
  }
  return Status::OK();
}

Result<engine::ExecResult> ReadWriteSplitInterceptor::DecorateResult(
    const sql::Statement& stmt, engine::ExecResult result) {
  (void)stmt;
  if (!result.is_query && tls_write_fanout > 1) {
    result.affected_rows /= tls_write_fanout;
  }
  tls_write_fanout = 1;
  return result;
}

}  // namespace sphere::features
