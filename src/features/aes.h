#ifndef SPHERE_FEATURES_AES_H_
#define SPHERE_FEATURES_AES_H_

#include <cstdint>
#include <string>

namespace sphere::features {

/// Minimal from-scratch AES-128 block cipher (ECB mode with PKCS#7 padding),
/// used by the Encrypt feature. ECB keeps encryption deterministic, which the
/// feature needs so equality predicates on encrypted columns keep working —
/// the same trade-off the original's default AES encryptor makes.
class Aes128 {
 public:
  /// Key material is derived from the passphrase (truncated/zero-padded to
  /// 16 bytes, as the reference implementation does).
  explicit Aes128(const std::string& passphrase);

  /// Encrypts to a lowercase hex string (safe to embed in SQL literals).
  std::string EncryptToHex(const std::string& plaintext) const;

  /// Decrypts a hex string; returns false on malformed input or bad padding.
  bool DecryptFromHex(const std::string& hex, std::string* plaintext) const;

 private:
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  uint8_t round_keys_[176];  ///< 11 round keys x 16 bytes
};

}  // namespace sphere::features

#endif  // SPHERE_FEATURES_AES_H_
