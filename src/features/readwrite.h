#ifndef SPHERE_FEATURES_READWRITE_H_
#define SPHERE_FEATURES_READWRITE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "core/runtime.h"

namespace sphere::features {

/// Read-write splitting (paper §IV-C): SELECTs outside transactions go to
/// replica data sources, writes go to (and, in this simulation, are fanned
/// out to) the primary group. The fan-out stands in for the native
/// primary-replica replication (MGR etc.) the real deployments rely on.
struct ReadWriteSplitConfig {
  struct Group {
    std::string write_data_source;
    std::vector<std::string> read_data_sources;
    std::vector<int> weights;        ///< WEIGHT balancer only
    std::string load_balancer = "ROUND_ROBIN";  ///< ROUND_ROBIN|RANDOM|WEIGHT
  };
  std::vector<Group> groups;
  /// Mirror write units onto the replicas (synchronous-replication stand-in).
  bool replicate_writes = true;
};

class ReadWriteSplitInterceptor : public core::StatementInterceptor {
 public:
  explicit ReadWriteSplitInterceptor(ReadWriteSplitConfig config)
      : config_(std::move(config)), rng_(0xBADC0FFEE) {}

  Status AfterRewrite(const sql::Statement& stmt,
                      std::vector<core::SQLUnit>* units,
                      bool in_transaction) override;

  /// Divides the affected-row count by the replication fan-out so mirrored
  /// write units are not double-counted towards the client.
  Result<engine::ExecResult> DecorateResult(const sql::Statement& stmt,
                                            engine::ExecResult result) override;

  int64_t reads_routed_to_replicas() const { return replica_reads_.load(); }
  int64_t writes_replicated() const { return replicated_writes_.load(); }

 private:
  const ReadWriteSplitConfig::Group* GroupOf(const std::string& ds) const;
  std::string PickReplica(const ReadWriteSplitConfig::Group& group);

  const ReadWriteSplitConfig config_;
  std::atomic<uint64_t> round_robin_{0};
  Mutex rng_mu_{LockRank::kCommon, "features/readwrite.rng"};
  Rng rng_ SPHERE_GUARDED_BY(rng_mu_);
  std::atomic<int64_t> replica_reads_{0};
  std::atomic<int64_t> replicated_writes_{0};
};

}  // namespace sphere::features

#endif  // SPHERE_FEATURES_READWRITE_H_
