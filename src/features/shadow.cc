#include "features/shadow.h"

#include "common/strings.h"
#include "core/hint.h"
#include "sql/condition.h"

namespace sphere::features {

bool ShadowInterceptor::IsShadowTraffic(const sql::Statement& stmt) const {
  if (core::HintManager::IsShadow()) return true;
  if (config_.shadow_column.empty()) return false;

  if (stmt.kind() == sql::StatementKind::kInsert) {
    const auto& ins = static_cast<const sql::InsertStatement&>(stmt);
    auto values = sql::ExtractInsertValues(ins, config_.shadow_column, {});
    if (!values.has_value() || values->empty()) return false;
    for (const Value& v : *values) {
      if (v.ToInt() != 1) return false;
    }
    return true;
  }

  const sql::Expr* where = nullptr;
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      where = static_cast<const sql::SelectStatement&>(stmt).where.get();
      break;
    case sql::StatementKind::kUpdate:
      where = static_cast<const sql::UpdateStatement&>(stmt).where.get();
      break;
    case sql::StatementKind::kDelete:
      where = static_cast<const sql::DeleteStatement&>(stmt).where.get();
      break;
    default:
      return false;
  }
  for (const auto& group : sql::ExtractConditionGroups(where, {})) {
    for (const auto& cond : group) {
      if (EqualsIgnoreCase(cond.column, config_.shadow_column) &&
          cond.kind == sql::ColumnCondition::Kind::kEqual &&
          cond.values[0].ToInt() == 1) {
        return true;
      }
    }
  }
  return false;
}

Status ShadowInterceptor::AfterRewrite(const sql::Statement& stmt,
                                       std::vector<core::SQLUnit>* units,
                                       bool in_transaction) {
  (void)in_transaction;
  if (!IsShadowTraffic(stmt)) return Status::OK();
  for (auto& unit : *units) {
    auto it = config_.mapping.find(unit.data_source);
    if (it != config_.mapping.end()) {
      unit.data_source = it->second;
    }
  }
  ++shadowed_;
  return Status::OK();
}

}  // namespace sphere::features
