#include "features/scaling.h"

#include <set>

#include "common/hash.h"
#include "common/strings.h"

namespace sphere::features {

namespace {

/// Order-independent checksum of a row set (sum of row hashes).
uint64_t ChecksumAdd(uint64_t acc, const Row& row) { return acc + HashRow(row); }

}  // namespace

Result<ScalingReport> ScalingJob::Run() {
  if (runtime_->rule() == nullptr) {
    return Status::InvalidArgument("no rule installed");
  }
  const core::TableRule* source_rule =
      runtime_->rule()->FindTableRule(logic_table_);
  if (source_rule == nullptr) {
    return Status::NotFound("no sharding rule for " + logic_table_);
  }

  // ---- Phase 1: prepare ----
  target_config_.logic_table = logic_table_;
  SPHERE_ASSIGN_OR_RETURN(std::unique_ptr<core::TableRule> target_rule,
                          core::TableRule::Build(target_config_, 0));

  std::set<core::DataNode> source_nodes(source_rule->actual_nodes().begin(),
                                        source_rule->actual_nodes().end());
  for (const auto& node : target_rule->actual_nodes()) {
    if (source_nodes.count(node)) {
      return Status::InvalidArgument(
          "target data node collides with source: " + node.ToString());
    }
    if (runtime_->data_sources()->Find(node.data_source) == nullptr) {
      return Status::NotFound("target data source " + node.data_source);
    }
  }

  // Schema comes from any source actual table.
  const core::DataNode& first_source = source_rule->actual_nodes()[0];
  net::DataSource* first_ds = runtime_->data_sources()->Find(first_source.data_source);
  if (first_ds == nullptr) {
    return Status::NotFound("source data source " + first_source.data_source);
  }
  const storage::Table* schema_table =
      first_ds->node()->database()->FindTable(first_source.table);
  if (schema_table == nullptr) {
    return Status::NotFound("source table " + first_source.ToString());
  }
  Schema schema = schema_table->schema();

  // Locate the target sharding column.
  if (target_rule->table_strategy().columns.size() != 1) {
    return Status::Unsupported("scaling requires a single-column table strategy");
  }
  int shard_col = schema.IndexOf(target_rule->table_strategy().columns[0]);
  if (shard_col < 0) {
    return Status::NotFound("sharding column " +
                            target_rule->table_strategy().columns[0]);
  }

  for (const auto& node : target_rule->actual_nodes()) {
    net::DataSource* ds = runtime_->data_sources()->Find(node.data_source);
    SPHERE_RETURN_NOT_OK(
        ds->node()->database()->CreateTable(node.table, schema));
  }
  auto drop_targets = [&] {
    for (const auto& node : target_rule->actual_nodes()) {
      net::DataSource* ds = runtime_->data_sources()->Find(node.data_source);
      (void)ds->node()->database()->DropTable(node.table, /*if_exists=*/true);
    }
  };

  // ---- Phase 2: inventory copy ----
  ScalingReport report;
  report.source_nodes = source_rule->actual_nodes().size();
  report.target_nodes = target_rule->actual_nodes().size();

  for (const auto& src_node : source_rule->actual_nodes()) {
    net::DataSource* src_ds = runtime_->data_sources()->Find(src_node.data_source);
    storage::Table* src_table =
        src_ds->node()->database()->FindTable(src_node.table);
    if (src_table == nullptr) continue;
    ReaderLock src_lock(src_table->latch());
    for (auto it = src_table->Begin(); it.Valid(); it.Next()) {
      const Row& row = it.payload();
      report.source_checksum = ChecksumAdd(report.source_checksum, row);
      // Route by the target rule.
      auto target = target_rule->table_algorithm()->DoSharding(
          target_rule->actual_tables(), row[static_cast<size_t>(shard_col)]);
      if (!target.ok()) {
        drop_targets();
        return target.status();
      }
      const core::DataNode* target_node = nullptr;
      for (const auto& node : target_rule->actual_nodes()) {
        if (EqualsIgnoreCase(node.table, *target)) {
          target_node = &node;
          break;
        }
      }
      if (target_node == nullptr) {
        drop_targets();
        return Status::RouteError("no target node hosts " + *target);
      }
      net::DataSource* dst_ds =
          runtime_->data_sources()->Find(target_node->data_source);
      storage::Table* dst_table =
          dst_ds->node()->database()->FindTable(target_node->table);
      WriterLock dst_lock(dst_table->latch());
      Status st = dst_table->Insert(row, nullptr);
      if (!st.ok()) {
        drop_targets();
        return st;
      }
      ++report.rows_migrated;
    }
  }

  // ---- Phase 3: consistency check ----
  size_t target_rows = 0;
  for (const auto& node : target_rule->actual_nodes()) {
    net::DataSource* ds = runtime_->data_sources()->Find(node.data_source);
    storage::Table* t = ds->node()->database()->FindTable(node.table);
    ReaderLock lk(t->latch());
    target_rows += t->row_count();
    for (auto it = t->Begin(); it.Valid(); it.Next()) {
      report.target_checksum = ChecksumAdd(report.target_checksum, it.payload());
    }
  }
  report.consistency_ok = target_rows == report.rows_migrated &&
                          report.source_checksum == report.target_checksum;
  if (!report.consistency_ok) {
    drop_targets();
    return Status::Internal("scaling consistency check failed");
  }

  // ---- Phase 4: switch the rule ----
  core::ShardingRuleConfig new_config = runtime_->rule()->config();
  for (auto& table : new_config.tables) {
    if (EqualsIgnoreCase(table.logic_table, logic_table_)) {
      table = target_config_;
      break;
    }
  }
  Status st = runtime_->SetRule(std::move(new_config));
  if (!st.ok()) {
    drop_targets();
    return st;
  }
  return report;
}

}  // namespace sphere::features
