#ifndef SPHERE_FEATURES_ENCRYPT_H_
#define SPHERE_FEATURES_ENCRYPT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "features/aes.h"

namespace sphere::features {

/// The Encrypt feature (paper §IV-C): application-transparent column
/// encryption. Values written to configured columns are AES-encrypted before
/// routing; equality/IN predicates on those columns compare ciphertexts
/// (deterministic encryption); query results are decrypted on the way out.
///
/// Limitations (shared with the original's AES encryptor): range predicates
/// and ORDER BY over encrypted columns are not meaningful, and encrypted
/// columns must be stored as strings.
struct EncryptColumnConfig {
  std::string table;
  std::string column;
  std::string key;  ///< AES passphrase
};

class EncryptInterceptor : public core::StatementInterceptor {
 public:
  explicit EncryptInterceptor(std::vector<EncryptColumnConfig> columns);

  Result<sql::StatementPtr> BeforeRoute(const sql::Statement& stmt,
                                        std::vector<Value>* params) override;

  Result<engine::ExecResult> DecorateResult(const sql::Statement& stmt,
                                            engine::ExecResult result) override;

  /// Direct access for tests / assisted queries.
  Result<std::string> Encrypt(const std::string& table,
                              const std::string& column,
                              const std::string& plaintext) const;

 private:
  struct Entry {
    std::string table;
    std::string column;
    std::unique_ptr<Aes128> cipher;
  };

  const Entry* Find(const std::string& table, const std::string& column) const;
  /// Entry by column name alone when unambiguous (unqualified references).
  const Entry* FindByColumn(const std::string& column) const;

  Value EncryptValue(const Entry& entry, const Value& v) const;
  /// Rewrites comparisons on encrypted columns inside an expression tree.
  void RewriteExpr(sql::Expr* expr, const std::string& default_table,
                   std::vector<Value>* params) const;

  std::vector<Entry> entries_;
};

}  // namespace sphere::features

#endif  // SPHERE_FEATURES_ENCRYPT_H_
