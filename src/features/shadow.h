#ifndef SPHERE_FEATURES_SHADOW_H_
#define SPHERE_FEATURES_SHADOW_H_

#include <map>
#include <string>

#include "core/runtime.h"

namespace sphere::features {

/// The Shadow DB feature (paper §IV-C): full-link stress-testing traffic is
/// diverted to shadow data sources so production data stays clean. A
/// statement is shadow traffic when the thread set the shadow hint
/// (HintManager::SetShadow) or when it carries `<shadow_column> = 1` — in an
/// INSERT's values or an AND-reachable WHERE predicate.
struct ShadowConfig {
  /// production data source -> shadow data source.
  std::map<std::string, std::string> mapping;
  /// Column that flags test traffic (empty = hint only).
  std::string shadow_column = "shadow";
};

class ShadowInterceptor : public core::StatementInterceptor {
 public:
  explicit ShadowInterceptor(ShadowConfig config) : config_(std::move(config)) {}

  Status AfterRewrite(const sql::Statement& stmt,
                      std::vector<core::SQLUnit>* units,
                      bool in_transaction) override;

  int64_t shadow_statements() const { return shadowed_; }

 private:
  bool IsShadowTraffic(const sql::Statement& stmt) const;

  ShadowConfig config_;
  int64_t shadowed_ = 0;
};

}  // namespace sphere::features

#endif  // SPHERE_FEATURES_SHADOW_H_
