#ifndef SPHERE_DISTSQL_DISTSQL_H_
#define SPHERE_DISTSQL_DISTSQL_H_

#include <functional>
#include <string>

#include "core/runtime.h"
#include "engine/result_set.h"

namespace sphere::distsql {

/// Session-level hooks a DistSQL statement may need (RAL touches per-session
/// state such as the transaction type).
struct SessionHooks {
  std::function<std::string()> get_transaction_type;
  std::function<Status(const std::string&)> set_transaction_type;
};

/// The DistSQL engine (paper §V-A): lets operators manage sharding through
/// SQL instead of config files. Supported dialect:
///
/// RDL (Resource & Rule Definition Language)
///   CREATE|ALTER SHARDING TABLE RULE t (RESOURCES(ds_0, ds_1),
///       SHARDING_COLUMN=uid, TYPE=hash_mod,
///       PROPERTIES("sharding-count"=4)
///       [, KEY_GENERATE_STRATEGY(COLUMN=oid, TYPE=SNOWFLAKE)])   -- AutoTable
///   DROP SHARDING TABLE RULE t
///   CREATE SHARDING BINDING TABLE RULES (t_user, t_order)
///   CREATE BROADCAST TABLE RULE t_dict
///   SET DEFAULT STORAGE UNIT ds_0
///
/// RQL (Resource & Rule Query Language)
///   SHOW SHARDING TABLE RULES
///   SHOW SHARDING ALGORITHMS
///   SHOW STORAGE UNITS | SHOW RESOURCES
///   SHOW BINDING TABLE RULES
///   SHOW BROADCAST TABLE RULES
///
/// RAL (Resource & Rule Administration Language)
///   SET VARIABLE transaction_type = LOCAL|XA|BASE
///   SHOW VARIABLE transaction_type
///   PREVIEW <sql>          -- shows the route + rewrite result
///   SHOW METRICS [LIKE '<pattern>']  -- registry snapshot (DESIGN.md §13)
///   TRACE <sql>            -- executes <sql>, returns its span tree
///
/// The engine owns the declarative rule configuration: every RDL statement
/// mutates it and re-installs the compiled rule into the runtime (AutoTable
/// layout computation happens in the rule compiler).
class DistSQLEngine {
 public:
  explicit DistSQLEngine(core::ShardingRuntime* runtime) : runtime_(runtime) {}

  /// Quick syntactic test: is this statement DistSQL (vs ordinary SQL)?
  static bool IsDistSQL(std::string_view sql_text);

  /// Parses and executes one DistSQL statement.
  Result<engine::ExecResult> Execute(std::string_view sql_text,
                                     const SessionHooks& hooks);

  /// Current declarative config (source of truth for RQL output).
  const core::ShardingRuleConfig& config() const { return config_; }
  /// Seeds the declarative config (when rules were installed directly).
  void SeedConfig(core::ShardingRuleConfig config) { config_ = std::move(config); }

  /// Invoked after every successful rule mutation (governance persistence).
  void SetOnRuleChange(std::function<void()> callback) {
    on_rule_change_ = std::move(callback);
  }

 private:
  Result<engine::ExecResult> CreateOrAlterShardingRule(std::string_view rest,
                                                       bool is_alter);
  Result<engine::ExecResult> DropShardingRule(const std::string& table);
  Result<engine::ExecResult> CreateBindingRule(std::string_view rest);
  Result<engine::ExecResult> CreateBroadcastRule(const std::string& table);
  Result<engine::ExecResult> ShowShardingRules();
  Result<engine::ExecResult> ShowAlgorithms();
  Result<engine::ExecResult> ShowStorageUnits();
  Result<engine::ExecResult> ShowBindingRules();
  Result<engine::ExecResult> ShowBroadcastRules();
  Result<engine::ExecResult> Preview(std::string_view sql_text);
  Result<engine::ExecResult> ShowMetrics(std::string_view rest);
  Result<engine::ExecResult> TraceStatement(std::string_view sql_text);
  Status Reinstall();

  core::ShardingRuntime* runtime_;
  core::ShardingRuleConfig config_;
  std::function<void()> on_rule_change_;
};

}  // namespace sphere::distsql

#endif  // SPHERE_DISTSQL_DISTSQL_H_
