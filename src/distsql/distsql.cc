#include "distsql/distsql.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/trace.h"
#include "core/rewrite.h"
#include "core/route.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "transaction/types.h"

namespace sphere::distsql {

namespace {

using engine::ExecResult;
using engine::VectorResultSet;

ExecResult MakeTable(std::vector<std::string> columns, std::vector<Row> rows) {
  return ExecResult::Query(
      std::make_unique<VectorResultSet>(std::move(columns), std::move(rows)));
}

/// Cursor over a DistSQL token stream.
class TokenCursor {
 public:
  static Result<TokenCursor> Lex(std::string_view text) {
    sql::Lexer lexer(text);
    SPHERE_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, lexer.Tokenize());
    return TokenCursor(std::move(tokens));
  }

  const sql::Token& Peek() const { return tokens_[pos_]; }
  const sql::Token& Advance() {
    const sql::Token& t = tokens_[pos_];
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool MatchWord(const char* w) {
    if (Peek().IsKeyword(w)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchOp(const char* op) {
    if (Peek().IsOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectWord(const char* w) {
    if (!MatchWord(w)) {
      return Status::SyntaxError(std::string("expected ") + w + " near '" +
                                 Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!MatchOp(op)) {
      return Status::SyntaxError(std::string("expected '") + op + "' near '" +
                                 Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    const sql::Token& t = Peek();
    if (t.type == sql::TokenType::kIdentifier ||
        t.type == sql::TokenType::kKeyword ||
        t.type == sql::TokenType::kStringLiteral) {
      Advance();
      return t.text;
    }
    return Status::SyntaxError("expected identifier near '" + t.text + "'");
  }
  bool AtEnd() const {
    return Peek().type == sql::TokenType::kEof || Peek().IsOperator(";");
  }

 private:
  explicit TokenCursor(std::vector<sql::Token> tokens)
      : tokens_(std::move(tokens)) {}
  std::vector<sql::Token> tokens_;
  size_t pos_ = 0;
};

/// Parses PROPERTIES("k"=v, ...) into a Properties bag.
Status ParseProperties(TokenCursor* cur, Properties* props) {
  SPHERE_RETURN_NOT_OK(cur->ExpectOp("("));
  if (!cur->Peek().IsOperator(")")) {
    do {
      SPHERE_ASSIGN_OR_RETURN(std::string key, cur->ExpectIdent());
      SPHERE_RETURN_NOT_OK(cur->ExpectOp("="));
      const sql::Token& v = cur->Advance();
      switch (v.type) {
        case sql::TokenType::kIntLiteral:
          props->Set(key, std::to_string(v.int_value));
          break;
        case sql::TokenType::kDoubleLiteral:
          props->Set(key, std::to_string(v.double_value));
          break;
        default:
          props->Set(key, v.text);
      }
    } while (cur->MatchOp(","));
  }
  return cur->ExpectOp(")");
}

std::string DescribeStrategy(const core::ShardingStrategyConfig& s) {
  if (s.empty()) return "-";
  return Join(s.columns, ",") + " " + s.algorithm_type +
         (s.props.empty() ? "" : " (" + s.props.ToString() + ")");
}

}  // namespace

bool DistSQLEngine::IsDistSQL(std::string_view sql_text) {
  std::string t = Trim(sql_text);
  return StartsWithIgnoreCase(t, "CREATE SHARDING") ||
         StartsWithIgnoreCase(t, "ALTER SHARDING") ||
         StartsWithIgnoreCase(t, "DROP SHARDING") ||
         StartsWithIgnoreCase(t, "CREATE BROADCAST") ||
         StartsWithIgnoreCase(t, "DROP BROADCAST") ||
         StartsWithIgnoreCase(t, "SHOW SHARDING") ||
         StartsWithIgnoreCase(t, "SHOW BINDING") ||
         StartsWithIgnoreCase(t, "SHOW BROADCAST") ||
         StartsWithIgnoreCase(t, "SHOW STORAGE") ||
         StartsWithIgnoreCase(t, "SHOW RESOURCES") ||
         StartsWithIgnoreCase(t, "SHOW VARIABLE") ||
         StartsWithIgnoreCase(t, "SET VARIABLE") ||
         StartsWithIgnoreCase(t, "SET DEFAULT STORAGE") ||
         StartsWithIgnoreCase(t, "PREVIEW ") ||
         StartsWithIgnoreCase(t, "SHOW METRICS") ||
         StartsWithIgnoreCase(t, "TRACE ");
}

Status DistSQLEngine::Reinstall() {
  core::ShardingRuleConfig copy = config_;
  SPHERE_RETURN_NOT_OK(runtime_->SetRule(std::move(copy)));
  if (on_rule_change_) on_rule_change_();
  return Status::OK();
}

Result<engine::ExecResult> DistSQLEngine::CreateOrAlterShardingRule(
    std::string_view rest, bool is_alter) {
  SPHERE_ASSIGN_OR_RETURN(TokenCursor cur, TokenCursor::Lex(rest));
  SPHERE_ASSIGN_OR_RETURN(std::string logic_table, cur.ExpectIdent());
  SPHERE_RETURN_NOT_OK(cur.ExpectOp("("));

  core::TableRuleConfig rule;
  rule.logic_table = logic_table;
  do {
    SPHERE_ASSIGN_OR_RETURN(std::string clause, cur.ExpectIdent());
    if (EqualsIgnoreCase(clause, "RESOURCES")) {
      SPHERE_RETURN_NOT_OK(cur.ExpectOp("("));
      do {
        SPHERE_ASSIGN_OR_RETURN(std::string ds, cur.ExpectIdent());
        rule.auto_resources.push_back(std::move(ds));
      } while (cur.MatchOp(","));
      SPHERE_RETURN_NOT_OK(cur.ExpectOp(")"));
    } else if (EqualsIgnoreCase(clause, "SHARDING_COLUMN")) {
      SPHERE_RETURN_NOT_OK(cur.ExpectOp("="));
      SPHERE_ASSIGN_OR_RETURN(std::string col, cur.ExpectIdent());
      rule.table_strategy.columns = {col};
    } else if (EqualsIgnoreCase(clause, "TYPE")) {
      SPHERE_RETURN_NOT_OK(cur.ExpectOp("="));
      SPHERE_ASSIGN_OR_RETURN(std::string type, cur.ExpectIdent());
      rule.table_strategy.algorithm_type = ToUpper(type);
    } else if (EqualsIgnoreCase(clause, "PROPERTIES")) {
      SPHERE_RETURN_NOT_OK(ParseProperties(&cur, &rule.table_strategy.props));
    } else if (EqualsIgnoreCase(clause, "KEY_GENERATE_STRATEGY")) {
      SPHERE_RETURN_NOT_OK(cur.ExpectOp("("));
      do {
        SPHERE_ASSIGN_OR_RETURN(std::string key, cur.ExpectIdent());
        SPHERE_RETURN_NOT_OK(cur.ExpectOp("="));
        SPHERE_ASSIGN_OR_RETURN(std::string value, cur.ExpectIdent());
        if (EqualsIgnoreCase(key, "COLUMN")) rule.keygen_column = value;
        else if (EqualsIgnoreCase(key, "TYPE")) rule.keygen_type = ToUpper(value);
      } while (cur.MatchOp(","));
      SPHERE_RETURN_NOT_OK(cur.ExpectOp(")"));
    } else {
      return Status::SyntaxError("unknown clause " + clause);
    }
  } while (cur.MatchOp(","));
  SPHERE_RETURN_NOT_OK(cur.ExpectOp(")"));

  if (rule.auto_resources.empty()) {
    return Status::InvalidArgument("RESOURCES(...) is required");
  }
  // AutoTable (paper §V-A): the user only supplies resources and shard count;
  // the layout (which table lives where) is computed by the rule compiler.
  rule.auto_sharding_count = static_cast<int>(
      rule.table_strategy.props.GetInt("sharding-count",
                                       static_cast<int64_t>(rule.auto_resources.size())));
  if (rule.table_strategy.algorithm_type.empty()) {
    rule.table_strategy.algorithm_type = "HASH_MOD";
  }

  auto it = std::find_if(config_.tables.begin(), config_.tables.end(),
                         [&](const core::TableRuleConfig& t) {
                           return EqualsIgnoreCase(t.logic_table, logic_table);
                         });
  if (is_alter) {
    if (it == config_.tables.end()) {
      return Status::NotFound("no sharding rule for " + logic_table);
    }
    *it = std::move(rule);
  } else {
    if (it != config_.tables.end()) {
      return Status::AlreadyExists("sharding rule for " + logic_table);
    }
    config_.tables.push_back(std::move(rule));
  }
  SPHERE_RETURN_NOT_OK(Reinstall());
  return ExecResult::Update(0);
}

Result<engine::ExecResult> DistSQLEngine::DropShardingRule(
    const std::string& table) {
  auto it = std::find_if(config_.tables.begin(), config_.tables.end(),
                         [&](const core::TableRuleConfig& t) {
                           return EqualsIgnoreCase(t.logic_table, table);
                         });
  if (it == config_.tables.end()) {
    return Status::NotFound("no sharding rule for " + table);
  }
  config_.tables.erase(it);
  // Drop dangling binding references.
  for (auto& group : config_.binding_groups) {
    group.erase(std::remove_if(group.begin(), group.end(),
                               [&](const std::string& t) {
                                 return EqualsIgnoreCase(t, table);
                               }),
                group.end());
  }
  config_.binding_groups.erase(
      std::remove_if(config_.binding_groups.begin(), config_.binding_groups.end(),
                     [](const std::vector<std::string>& g) {
                       return g.size() < 2;
                     }),
      config_.binding_groups.end());
  SPHERE_RETURN_NOT_OK(Reinstall());
  return ExecResult::Update(0);
}

Result<engine::ExecResult> DistSQLEngine::CreateBindingRule(
    std::string_view rest) {
  SPHERE_ASSIGN_OR_RETURN(TokenCursor cur, TokenCursor::Lex(rest));
  SPHERE_RETURN_NOT_OK(cur.ExpectOp("("));
  std::vector<std::string> group;
  do {
    SPHERE_ASSIGN_OR_RETURN(std::string t, cur.ExpectIdent());
    group.push_back(std::move(t));
  } while (cur.MatchOp(","));
  SPHERE_RETURN_NOT_OK(cur.ExpectOp(")"));
  if (group.size() < 2) {
    return Status::InvalidArgument("binding rule needs at least two tables");
  }
  config_.binding_groups.push_back(std::move(group));
  Status st = Reinstall();
  if (!st.ok()) {
    config_.binding_groups.pop_back();
    (void)Reinstall();
    return st;
  }
  return ExecResult::Update(0);
}

Result<engine::ExecResult> DistSQLEngine::CreateBroadcastRule(
    const std::string& table) {
  config_.broadcast_tables.insert(table);
  SPHERE_RETURN_NOT_OK(Reinstall());
  return ExecResult::Update(0);
}

Result<engine::ExecResult> DistSQLEngine::ShowShardingRules() {
  std::vector<Row> rows;
  for (const auto& t : config_.tables) {
    std::string nodes;
    if (const core::TableRule* compiled =
            runtime_->rule() ? runtime_->rule()->FindTableRule(t.logic_table)
                             : nullptr) {
      for (const auto& node : compiled->actual_nodes()) {
        if (!nodes.empty()) nodes += ", ";
        nodes += node.ToString();
      }
    }
    rows.push_back(Row{Value(t.logic_table),
                       Value(t.actual_data_nodes.empty()
                                 ? Join(t.auto_resources, ",")
                                 : t.actual_data_nodes),
                       Value(DescribeStrategy(t.database_strategy)),
                       Value(DescribeStrategy(t.table_strategy)),
                       Value(t.keygen_column.empty()
                                 ? "-"
                                 : t.keygen_column + " " + t.keygen_type),
                       Value(nodes)});
  }
  return MakeTable({"table", "resources", "database_strategy", "table_strategy",
                    "key_generator", "actual_data_nodes"},
                   std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::ShowAlgorithms() {
  std::vector<Row> rows;
  for (const auto& type : core::ListShardingAlgorithmTypes()) {
    rows.push_back(Row{Value(type)});
  }
  return MakeTable({"type"}, std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::ShowStorageUnits() {
  std::vector<Row> rows;
  for (const auto& name : runtime_->data_sources()->Names()) {
    net::DataSource* ds = runtime_->data_sources()->Find(name);
    rows.push_back(Row{Value(name),
                       Value(static_cast<int64_t>(ds->pool().max_size())),
                       Value(static_cast<int64_t>(ds->pool().available()))});
  }
  return MakeTable({"name", "pool_size", "pool_available"}, std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::ShowBindingRules() {
  std::vector<Row> rows;
  for (const auto& group : config_.binding_groups) {
    rows.push_back(Row{Value(Join(group, ","))});
  }
  return MakeTable({"binding_tables"}, std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::ShowBroadcastRules() {
  std::vector<Row> rows;
  for (const auto& t : config_.broadcast_tables) {
    rows.push_back(Row{Value(t)});
  }
  return MakeTable({"broadcast_table"}, std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::Preview(std::string_view sql_text) {
  sql::Parser parser(runtime_->dialect());
  SPHERE_ASSIGN_OR_RETURN(sql::StatementPtr stmt, parser.Parse(sql_text));
  SPHERE_ASSIGN_OR_RETURN(core::RouteResult route,
                          runtime_->PreviewRoute(*stmt, {}));
  core::RewriteEngine rewriter(runtime_->dialect());
  SPHERE_ASSIGN_OR_RETURN(core::RewriteResult rewritten,
                          rewriter.Rewrite(*stmt, route, {}));
  std::vector<Row> rows;
  for (const auto& unit : rewritten.units) {
    // Structured units skip text building; render it for display.
    rows.push_back(Row{Value(unit.data_source),
                       Value(unit.RenderSQL(runtime_->dialect()))});
  }
  return MakeTable({"data_source", "actual_sql"}, std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::ShowMetrics(std::string_view rest) {
  std::string tail = Trim(rest);
  std::string pattern;
  if (!tail.empty()) {
    if (!StartsWithIgnoreCase(tail, "LIKE")) {
      return Status::SyntaxError("expected LIKE near '" + tail + "'");
    }
    pattern = Trim(tail.substr(4));
    if (pattern.size() >= 2 &&
        (pattern.front() == '\'' || pattern.front() == '"') &&
        pattern.back() == pattern.front()) {
      pattern = pattern.substr(1, pattern.size() - 2);
    }
  }
  std::vector<Row> rows;
  for (const metrics::Sample& s :
       metrics::Registry::Instance().Snapshot(pattern)) {
    const bool is_histogram = s.kind == metrics::MetricKind::kHistogram;
    auto ms = [&](double v) {
      return Value(is_histogram ? TablePrinter::Fmt(v, 3) : std::string("-"));
    };
    const char* kind = s.kind == metrics::MetricKind::kCounter  ? "counter"
                       : s.kind == metrics::MetricKind::kGauge ? "gauge"
                                                               : "histogram";
    rows.push_back(Row{Value(s.name),
                       Value(std::string(kind)), Value(s.value), ms(s.avg_ms),
                       ms(s.p50_ms), ms(s.p95_ms), ms(s.p99_ms), ms(s.max_ms)});
  }
  return MakeTable({"metric", "type", "value", "avg_ms", "p50_ms", "p95_ms",
                    "p99_ms", "max_ms"},
                   std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::TraceStatement(
    std::string_view sql_text) {
  // Force-capture: install a trace so the statement's trace scope joins it
  // (bypassing the sampler), then drain the cursor inside the scope so any
  // streamed merge work still lands in the tree.
  trace::Trace tr("trace");
  {
    trace::TraceScope scope(&tr);
    SPHERE_ASSIGN_OR_RETURN(ExecResult result, runtime_->Execute(sql_text));
    if (result.is_query && result.result_set != nullptr) {
      (void)engine::DrainResultSet(result.result_set.get());
    }
  }
  tr.EndSpan(tr.root());
  trace::NotifySink(tr);

  std::vector<Row> rows;
  tr.Visit([&rows](const trace::Span& span) {
    std::string detail;
    for (const auto& attr : span.attrs) {
      if (!detail.empty()) detail += " ";
      detail += attr.key + "=" + attr.value;
    }
    std::string label(2 * static_cast<size_t>(span.depth), ' ');
    label += span.name;
    rows.push_back(Row{Value(std::move(label)),
                       span.duration_us < 0 ? Value(std::string("-"))
                                            : Value(span.duration_us),
                       Value(std::move(detail))});
  });
  return MakeTable({"span", "duration_us", "detail"}, std::move(rows));
}

Result<engine::ExecResult> DistSQLEngine::Execute(std::string_view sql_text,
                                                  const SessionHooks& hooks) {
  std::string text = Trim(sql_text);
  if (!text.empty() && text.back() == ';') text.pop_back();

  if (StartsWithIgnoreCase(text, "CREATE SHARDING TABLE RULE")) {
    return CreateOrAlterShardingRule(std::string_view(text).substr(26), false);
  }
  if (StartsWithIgnoreCase(text, "ALTER SHARDING TABLE RULE")) {
    return CreateOrAlterShardingRule(std::string_view(text).substr(25), true);
  }
  if (StartsWithIgnoreCase(text, "DROP SHARDING TABLE RULE")) {
    return DropShardingRule(Trim(text.substr(24)));
  }
  if (StartsWithIgnoreCase(text, "CREATE SHARDING BINDING TABLE RULES")) {
    return CreateBindingRule(std::string_view(text).substr(35));
  }
  if (StartsWithIgnoreCase(text, "CREATE BROADCAST TABLE RULE")) {
    return CreateBroadcastRule(Trim(text.substr(27)));
  }
  if (StartsWithIgnoreCase(text, "SHOW SHARDING TABLE RULES")) {
    return ShowShardingRules();
  }
  if (StartsWithIgnoreCase(text, "SHOW SHARDING ALGORITHMS")) {
    return ShowAlgorithms();
  }
  if (StartsWithIgnoreCase(text, "SHOW STORAGE UNITS") ||
      StartsWithIgnoreCase(text, "SHOW RESOURCES")) {
    return ShowStorageUnits();
  }
  if (StartsWithIgnoreCase(text, "SHOW BINDING TABLE RULES")) {
    return ShowBindingRules();
  }
  if (StartsWithIgnoreCase(text, "SHOW BROADCAST TABLE RULES")) {
    return ShowBroadcastRules();
  }
  if (StartsWithIgnoreCase(text, "SET DEFAULT STORAGE UNIT")) {
    config_.default_data_source = Trim(text.substr(24));
    SPHERE_RETURN_NOT_OK(Reinstall());
    return ExecResult::Update(0);
  }
  if (StartsWithIgnoreCase(text, "SET VARIABLE")) {
    // RAL: SET VARIABLE transaction_type = XA (paper §V-A).
    SPHERE_ASSIGN_OR_RETURN(TokenCursor cur,
                            TokenCursor::Lex(std::string_view(text).substr(12)));
    SPHERE_ASSIGN_OR_RETURN(std::string name, cur.ExpectIdent());
    SPHERE_RETURN_NOT_OK(cur.ExpectOp("="));
    const sql::Token& value_token = cur.Advance();
    std::string value = value_token.type == sql::TokenType::kIntLiteral
                            ? std::to_string(value_token.int_value)
                            : value_token.text;
    if (EqualsIgnoreCase(name, "transaction_type")) {
      if (!hooks.set_transaction_type) {
        return Status::Unsupported("no session transaction hook");
      }
      SPHERE_RETURN_NOT_OK(hooks.set_transaction_type(value));
      return ExecResult::Update(0);
    }
    if (EqualsIgnoreCase(name, "max_connections_per_query")) {
      runtime_->SetMaxConnectionsPerQuery(
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10)));
      return ExecResult::Update(0);
    }
    return Status::Unsupported("variable " + name);
  }
  if (StartsWithIgnoreCase(text, "SHOW VARIABLE")) {
    std::string name = Trim(text.substr(13));
    if (EqualsIgnoreCase(name, "transaction_type")) {
      std::string type =
          hooks.get_transaction_type ? hooks.get_transaction_type() : "LOCAL";
      return MakeTable({"variable", "value"},
                       {Row{Value("transaction_type"), Value(type)}});
    }
    if (EqualsIgnoreCase(name, "max_connections_per_query")) {
      return MakeTable(
          {"variable", "value"},
          {Row{Value("max_connections_per_query"),
               Value(static_cast<int64_t>(runtime_->max_connections_per_query()))}});
    }
    return Status::Unsupported("variable " + name);
  }
  if (StartsWithIgnoreCase(text, "PREVIEW ")) {
    return Preview(std::string_view(text).substr(8));
  }
  if (StartsWithIgnoreCase(text, "SHOW METRICS")) {
    return ShowMetrics(std::string_view(text).substr(12));
  }
  if (StartsWithIgnoreCase(text, "TRACE ")) {
    return TraceStatement(Trim(text.substr(6)));
  }
  return Status::SyntaxError("unrecognized DistSQL statement: " + text);
}

}  // namespace sphere::distsql
