#ifndef SPHERE_SQL_PARSER_H_
#define SPHERE_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/dialect.h"
#include "sql/token.h"

namespace sphere::sql {

/// Recursive-descent SQL parser producing the AST of one statement.
///
/// Stands in for the ANTLR-generated parsers of the original system; the
/// dialect only affects tolerance knobs (identifier quoting is handled in the
/// lexer, `LIMIT a, b` shorthand is MySQL-only).
class Parser {
 public:
  explicit Parser(const Dialect& dialect = Dialect::MySQL())
      : dialect_(dialect) {}

  /// Parses exactly one statement (a trailing ';' is allowed).
  Result<StatementPtr> Parse(std::string_view sql);

  /// Number of `?` parameters seen by the last successful Parse call.
  int param_count() const { return param_count_; }

 private:
  // Statement parsers.
  Result<StatementPtr> ParseStatement();
  Result<StatementPtr> ParseSelect();
  Result<StatementPtr> ParseInsert();
  Result<StatementPtr> ParseUpdate();
  Result<StatementPtr> ParseDelete();
  Result<StatementPtr> ParseCreate();
  Result<StatementPtr> ParseDrop();
  Result<StatementPtr> ParseTruncate();
  Result<StatementPtr> ParseSet();
  Result<StatementPtr> ParseShow();
  Result<StatementPtr> ParseUse();

  // Clause helpers.
  Result<TableRef> ParseTableRef();
  Status ParseSelectItems(SelectStatement* stmt);
  Status ParseFromClause(SelectStatement* stmt);
  Status ParseLimitClause(SelectStatement* stmt);
  Result<ColumnDef> ParseColumnDef();

  // Expressions by precedence.
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  // Token stream helpers.
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool MatchKeyword(const char* kw);
  bool MatchOperator(const char* op);
  Status ExpectKeyword(const char* kw);
  Status ExpectOperator(const char* op);
  Result<std::string> ExpectIdentifier();
  Status ErrorHere(const std::string& what) const;

  const Dialect& dialect_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int param_count_ = 0;
};

/// Convenience: parse with the MySQL dialect.
Result<StatementPtr> ParseSQL(std::string_view sql);
/// Convenience: parse with an explicit dialect.
Result<StatementPtr> ParseSQL(std::string_view sql, const Dialect& dialect);

/// A parse product shareable across sessions and threads: the AST is
/// immutable after parsing (every pipeline stage that mutates works on a
/// Clone), so one `shared_ptr<const Statement>` can serve concurrent
/// executions. The parameter count travels with the AST because binding
/// needs it long after the Parser is gone — this is what the statement
/// cache stores.
struct SharedStatement {
  std::shared_ptr<const Statement> stmt;
  int param_count = 0;
};

/// Parses one statement into a shareable immutable AST.
Result<SharedStatement> ParseShared(std::string_view sql, const Dialect& dialect);

}  // namespace sphere::sql

#endif  // SPHERE_SQL_PARSER_H_
