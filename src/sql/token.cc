#include "sql/token.h"

#include <unordered_set>

#include "common/strings.h"

namespace sphere::sql {

bool Token::IsKeyword(const char* kw) const {
  return (type == TokenType::kKeyword || type == TokenType::kIdentifier) &&
         EqualsIgnoreCase(text, kw);
}

bool Token::IsOperator(const char* op) const {
  return type == TokenType::kOperator && text == op;
}

bool IsReservedWord(const std::string& word) {
  static const std::unordered_set<std::string> kWords = {
      "select",   "from",     "where",    "insert",  "into",    "values",
      "update",   "set",      "delete",   "create",  "drop",    "table",
      "truncate", "index",    "primary",  "key",     "not",     "null",
      "and",      "or",       "in",       "between", "like",    "is",
      "join",     "inner",    "left",     "right",   "on",      "as",
      "order",    "group",    "by",       "having",  "limit",   "offset",
      "asc",      "desc",     "distinct", "begin",   "start",   "transaction",
      "commit",   "rollback", "for",      "if",      "exists",  "union",
      "all",      "case",     "when",     "then",    "else",    "end",
      "show",     "use",      "prepare",  "force",
  };
  return kWords.count(sphere::ToLower(word)) > 0;
}

}  // namespace sphere::sql
