#include "sql/parser.h"

#include "common/arena.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace sphere::sql {

namespace {
/// Maps a dialect type name (INT, BIGINT, VARCHAR(n), DECIMAL(p,s)...) to a
/// storage column type.
ColumnType MapTypeName(const std::string& raw) {
  std::string t = ToUpper(raw);
  if (t.find("INT") != std::string::npos) return ColumnType::kInt;
  if (t.find("CHAR") != std::string::npos || t.find("TEXT") != std::string::npos)
    return ColumnType::kString;
  if (t.find("DOUBLE") != std::string::npos || t.find("FLOAT") != std::string::npos ||
      t.find("DECIMAL") != std::string::npos || t.find("NUMERIC") != std::string::npos ||
      t.find("REAL") != std::string::npos)
    return ColumnType::kDouble;
  if (t.find("DATE") != std::string::npos || t.find("TIME") != std::string::npos)
    return ColumnType::kString;
  return ColumnType::kString;
}
}  // namespace

const Token& Parser::Peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= tokens_.size()) return tokens_.back();
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchOperator(const char* op) {
  if (Peek().IsOperator(op)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!MatchKeyword(kw)) return ErrorHere(std::string("expected ") + kw);
  return Status::OK();
}

Status Parser::ExpectOperator(const char* op) {
  if (!MatchOperator(op)) return ErrorHere(std::string("expected '") + op + "'");
  return Status::OK();
}

Result<std::string> Parser::ExpectIdentifier() {
  const Token& t = Peek();
  if (t.type == TokenType::kIdentifier || t.type == TokenType::kKeyword) {
    Advance();
    return t.text;
  }
  return Status::SyntaxError("expected identifier near '" + t.text + "'");
}

Status Parser::ErrorHere(const std::string& what) const {
  const Token& t = Peek();
  return Status::SyntaxError(
      StrFormat("%s near '%s' (offset %zu)", what.c_str(), t.text.c_str(), t.pos));
}

Result<StatementPtr> Parser::Parse(std::string_view sql) {
  Lexer lexer(sql);
  SPHERE_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  pos_ = 0;
  param_count_ = 0;
  SPHERE_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement());
  MatchOperator(";");
  if (Peek().type != TokenType::kEof) {
    return ErrorHere("unexpected trailing input");
  }
  return stmt;
}

Result<StatementPtr> Parser::ParseStatement() {
  const Token& t = Peek();
  if (t.IsKeyword("SELECT")) return ParseSelect();
  if (t.IsKeyword("INSERT")) return ParseInsert();
  if (t.IsKeyword("UPDATE")) return ParseUpdate();
  if (t.IsKeyword("DELETE")) return ParseDelete();
  if (t.IsKeyword("CREATE")) return ParseCreate();
  if (t.IsKeyword("DROP")) return ParseDrop();
  if (t.IsKeyword("TRUNCATE")) return ParseTruncate();
  if (t.IsKeyword("BEGIN")) {
    Advance();
    return StatementPtr(std::make_unique<TclStatement>(StatementKind::kBegin));
  }
  if (t.IsKeyword("START")) {
    Advance();
    SPHERE_RETURN_NOT_OK(ExpectKeyword("TRANSACTION"));
    return StatementPtr(std::make_unique<TclStatement>(StatementKind::kBegin));
  }
  if (t.IsKeyword("COMMIT")) {
    Advance();
    return StatementPtr(std::make_unique<TclStatement>(StatementKind::kCommit));
  }
  if (t.IsKeyword("ROLLBACK")) {
    Advance();
    return StatementPtr(std::make_unique<TclStatement>(StatementKind::kRollback));
  }
  if (t.IsKeyword("SET")) return ParseSet();
  if (t.IsKeyword("SHOW")) return ParseShow();
  if (t.IsKeyword("USE")) return ParseUse();
  return ErrorHere("unsupported statement");
}

// --------------------------------------------------------------------------
// SELECT
// --------------------------------------------------------------------------

Status Parser::ParseSelectItems(SelectStatement* stmt) {
  do {
    SelectItem item;
    if (Peek().IsOperator("*")) {
      Advance();
      item.is_star = true;
    } else if ((Peek().type == TokenType::kIdentifier ||
                Peek().type == TokenType::kKeyword) &&
               Peek(1).IsOperator(".") && Peek(2).IsOperator("*")) {
      item.is_star = true;
      item.star_qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
    } else {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(e).value();
      if (MatchKeyword("AS")) {
        auto a = ExpectIdentifier();
        if (!a.ok()) return a.status();
        item.alias = std::move(a).value();
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
    }
    stmt->items.push_back(std::move(item));
  } while (MatchOperator(","));
  return Status::OK();
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  SPHERE_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
  if (MatchKeyword("AS")) {
    SPHERE_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Advance().text;
  }
  return ref;
}

Status Parser::ParseFromClause(SelectStatement* stmt) {
  do {
    auto r = ParseTableRef();
    if (!r.ok()) return r.status();
    stmt->from.push_back(std::move(r).value());
  } while (MatchOperator(","));

  for (;;) {
    JoinClause join;
    if (MatchKeyword("JOIN") ||
        (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN") &&
         (Advance(), Advance(), true))) {
      join.type = JoinClause::Type::kInner;
    } else if (Peek().IsKeyword("LEFT")) {
      Advance();
      MatchKeyword("OUTER");
      SPHERE_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join.type = JoinClause::Type::kLeft;
    } else if (Peek().IsKeyword("RIGHT")) {
      Advance();
      MatchKeyword("OUTER");
      SPHERE_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join.type = JoinClause::Type::kRight;
    } else if (Peek().IsKeyword("CROSS")) {
      Advance();
      SPHERE_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      join.type = JoinClause::Type::kCross;
    } else {
      break;
    }
    auto r = ParseTableRef();
    if (!r.ok()) return r.status();
    join.table = std::move(r).value();
    if (join.type != JoinClause::Type::kCross) {
      SPHERE_RETURN_NOT_OK(ExpectKeyword("ON"));
      auto on = ParseExpr();
      if (!on.ok()) return on.status();
      join.on = std::move(on).value();
    }
    stmt->joins.push_back(std::move(join));
  }
  return Status::OK();
}

Status Parser::ParseLimitClause(SelectStatement* stmt) {
  if (MatchKeyword("LIMIT")) {
    const Token& first = Peek();
    if (first.type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    Advance();
    LimitClause lim;
    if (dialect_.SupportsCommaLimit() && MatchOperator(",")) {
      // MySQL: LIMIT offset, count
      const Token& second = Peek();
      if (second.type != TokenType::kIntLiteral) {
        return ErrorHere("expected integer after LIMIT offset,");
      }
      Advance();
      lim.offset = first.int_value;
      lim.count = second.int_value;
    } else {
      lim.count = first.int_value;
      if (MatchKeyword("OFFSET")) {
        const Token& off = Peek();
        if (off.type != TokenType::kIntLiteral) {
          return ErrorHere("expected integer after OFFSET");
        }
        Advance();
        lim.offset = off.int_value;
      }
    }
    stmt->limit = lim;
  } else if (Peek().IsKeyword("OFFSET")) {
    Advance();
    const Token& off = Peek();
    if (off.type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after OFFSET");
    }
    Advance();
    LimitClause lim;
    lim.offset = off.int_value;
    stmt->limit = lim;
  }
  return Status::OK();
}

Result<StatementPtr> Parser::ParseSelect() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStatement>();
  if (MatchKeyword("DISTINCT")) stmt->distinct = true;
  SPHERE_RETURN_NOT_OK(ParseSelectItems(stmt.get()));
  if (MatchKeyword("FROM")) {
    SPHERE_RETURN_NOT_OK(ParseFromClause(stmt.get()));
  }
  if (MatchKeyword("WHERE")) {
    SPHERE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (Peek().IsKeyword("GROUP")) {
    Advance();
    SPHERE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      SPHERE_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (MatchOperator(","));
  }
  if (MatchKeyword("HAVING")) {
    SPHERE_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (Peek().IsKeyword("ORDER")) {
    Advance();
    SPHERE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      SPHERE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      bool desc = false;
      if (MatchKeyword("DESC")) desc = true;
      else MatchKeyword("ASC");
      stmt->order_by.emplace_back(std::move(e), desc);
    } while (MatchOperator(","));
  }
  SPHERE_RETURN_NOT_OK(ParseLimitClause(stmt.get()));
  if (MatchKeyword("FOR")) {
    SPHERE_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    stmt->for_update = true;
  }
  return StatementPtr(std::move(stmt));
}

// --------------------------------------------------------------------------
// INSERT / UPDATE / DELETE
// --------------------------------------------------------------------------

Result<StatementPtr> Parser::ParseInsert() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("INSERT"));
  SPHERE_RETURN_NOT_OK(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStatement>();
  SPHERE_ASSIGN_OR_RETURN(stmt->table.name, ExpectIdentifier());
  if (MatchOperator("(")) {
    do {
      SPHERE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt->columns.push_back(std::move(col));
    } while (MatchOperator(","));
    SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
  }
  SPHERE_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  do {
    SPHERE_RETURN_NOT_OK(ExpectOperator("("));
    std::vector<ExprPtr> row;
    do {
      SPHERE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchOperator(","));
    SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
    stmt->rows.push_back(std::move(row));
  } while (MatchOperator(","));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUpdate() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStatement>();
  SPHERE_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
  SPHERE_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    Assignment a;
    SPHERE_ASSIGN_OR_RETURN(a.column, ExpectIdentifier());
    // Tolerate table-qualified assignment targets.
    if (MatchOperator(".")) {
      SPHERE_ASSIGN_OR_RETURN(a.column, ExpectIdentifier());
    }
    SPHERE_RETURN_NOT_OK(ExpectOperator("="));
    SPHERE_ASSIGN_OR_RETURN(a.value, ParseExpr());
    stmt->assignments.push_back(std::move(a));
  } while (MatchOperator(","));
  if (MatchKeyword("WHERE")) {
    SPHERE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDelete() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("DELETE"));
  SPHERE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStatement>();
  SPHERE_ASSIGN_OR_RETURN(stmt->table, ParseTableRef());
  if (MatchKeyword("WHERE")) {
    SPHERE_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StatementPtr(std::move(stmt));
}

// --------------------------------------------------------------------------
// DDL
// --------------------------------------------------------------------------

Result<ColumnDef> Parser::ParseColumnDef() {
  ColumnDef def;
  SPHERE_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
  SPHERE_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
  def.raw_type = ToUpper(type_name);
  if (MatchOperator("(")) {
    def.raw_type += "(";
    bool first = true;
    while (!Peek().IsOperator(")")) {
      if (!first) def.raw_type += ",";
      first = false;
      def.raw_type += Advance().text;
      MatchOperator(",");
    }
    SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
    def.raw_type += ")";
  }
  def.type = MapTypeName(def.raw_type);
  for (;;) {
    if (Peek().IsKeyword("PRIMARY")) {
      Advance();
      SPHERE_RETURN_NOT_OK(ExpectKeyword("KEY"));
      def.primary_key = true;
    } else if (Peek().IsKeyword("NOT")) {
      Advance();
      SPHERE_RETURN_NOT_OK(ExpectKeyword("NULL"));
      def.not_null = true;
    } else if (Peek().IsKeyword("NULL")) {
      Advance();
    } else if (Peek().IsKeyword("DEFAULT")) {
      Advance();
      Advance();  // skip the default literal
    } else {
      break;
    }
  }
  return def;
}

Result<StatementPtr> Parser::ParseCreate() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("CREATE"));
  if (MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<CreateIndexStatement>();
    SPHERE_ASSIGN_OR_RETURN(stmt->index_name, ExpectIdentifier());
    SPHERE_RETURN_NOT_OK(ExpectKeyword("ON"));
    SPHERE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
    SPHERE_RETURN_NOT_OK(ExpectOperator("("));
    do {
      SPHERE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt->columns.push_back(std::move(col));
    } while (MatchOperator(","));
    SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
    return StatementPtr(std::move(stmt));
  }
  SPHERE_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<CreateTableStatement>();
  if (Peek().IsKeyword("IF")) {
    Advance();
    SPHERE_RETURN_NOT_OK(ExpectKeyword("NOT"));
    SPHERE_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    stmt->if_not_exists = true;
  }
  SPHERE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  SPHERE_RETURN_NOT_OK(ExpectOperator("("));
  do {
    if (Peek().IsKeyword("PRIMARY")) {
      // Table-level PRIMARY KEY (col) constraint.
      Advance();
      SPHERE_RETURN_NOT_OK(ExpectKeyword("KEY"));
      SPHERE_RETURN_NOT_OK(ExpectOperator("("));
      SPHERE_ASSIGN_OR_RETURN(std::string pk_col, ExpectIdentifier());
      // Composite primary keys: only the first column is indexed.
      while (MatchOperator(",")) {
        SPHERE_RETURN_NOT_OK(ExpectIdentifier().status());
      }
      SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
      for (auto& c : stmt->columns) {
        if (EqualsIgnoreCase(c.name, pk_col)) c.primary_key = true;
      }
      continue;
    }
    SPHERE_ASSIGN_OR_RETURN(ColumnDef def, ParseColumnDef());
    stmt->columns.push_back(std::move(def));
  } while (MatchOperator(","));
  SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseDrop() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("DROP"));
  SPHERE_RETURN_NOT_OK(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStatement>();
  if (Peek().IsKeyword("IF")) {
    Advance();
    SPHERE_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
    stmt->if_exists = true;
  }
  SPHERE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseTruncate() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("TRUNCATE"));
  MatchKeyword("TABLE");
  auto stmt = std::make_unique<TruncateStatement>();
  SPHERE_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier());
  return StatementPtr(std::move(stmt));
}

// --------------------------------------------------------------------------
// SET / SHOW / USE
// --------------------------------------------------------------------------

Result<StatementPtr> Parser::ParseSet() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("SET"));
  auto stmt = std::make_unique<SetStatement>();
  // Accept "SET VARIABLE name = value" (DistSQL RAL style) and "SET name = v".
  SPHERE_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier());
  if (EqualsIgnoreCase(first, "VARIABLE")) {
    SPHERE_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier());
  } else {
    stmt->name = std::move(first);
  }
  SPHERE_RETURN_NOT_OK(ExpectOperator("="));
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral:
      stmt->value = Value(t.int_value);
      break;
    case TokenType::kDoubleLiteral:
      stmt->value = Value(t.double_value);
      break;
    case TokenType::kStringLiteral:
    case TokenType::kIdentifier:
    case TokenType::kKeyword:
      stmt->value = Value(t.text);
      break;
    default:
      return ErrorHere("expected value in SET");
  }
  Advance();
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseShow() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("SHOW"));
  auto stmt = std::make_unique<ShowStatement>();
  while (Peek().type != TokenType::kEof && !Peek().IsOperator(";")) {
    if (!stmt->what.empty()) stmt->what += " ";
    stmt->what += Advance().text;
  }
  return StatementPtr(std::move(stmt));
}

Result<StatementPtr> Parser::ParseUse() {
  SPHERE_RETURN_NOT_OK(ExpectKeyword("USE"));
  auto stmt = std::make_unique<UseStatement>();
  SPHERE_ASSIGN_OR_RETURN(stmt->schema, ExpectIdentifier());
  return StatementPtr(std::move(stmt));
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  SPHERE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Peek().IsKeyword("OR")) {
    Advance();
    SPHERE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  SPHERE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Peek().IsKeyword("AND")) {
    Advance();
    SPHERE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Peek().IsKeyword("NOT") && !Peek(1).IsKeyword("BETWEEN") &&
      !Peek(1).IsKeyword("IN") && !Peek(1).IsKeyword("LIKE")) {
    Advance();
    SPHERE_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(child)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  SPHERE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  for (;;) {
    const Token& t = Peek();
    BinaryOp op;
    if (t.IsOperator("=")) op = BinaryOp::kEq;
    else if (t.IsOperator("<>") || t.IsOperator("!=")) op = BinaryOp::kNe;
    else if (t.IsOperator("<")) op = BinaryOp::kLt;
    else if (t.IsOperator("<=")) op = BinaryOp::kLe;
    else if (t.IsOperator(">")) op = BinaryOp::kGt;
    else if (t.IsOperator(">=")) op = BinaryOp::kGe;
    else if (t.IsKeyword("LIKE")) op = BinaryOp::kLike;
    else if (t.IsKeyword("NOT") && Peek(1).IsKeyword("LIKE")) {
      Advance();
      op = BinaryOp::kNotLike;
    } else if (t.IsKeyword("IS")) {
      Advance();
      bool neg = MatchKeyword("NOT");
      SPHERE_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return ExprPtr(std::make_unique<UnaryExpr>(
          neg ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, std::move(left)));
    } else if (t.IsKeyword("BETWEEN") ||
               (t.IsKeyword("NOT") && Peek(1).IsKeyword("BETWEEN"))) {
      bool neg = t.IsKeyword("NOT");
      if (neg) Advance();
      Advance();  // BETWEEN
      SPHERE_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      SPHERE_RETURN_NOT_OK(ExpectKeyword("AND"));
      SPHERE_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return ExprPtr(std::make_unique<BetweenExpr>(std::move(left), std::move(lo),
                                                   std::move(hi), neg));
    } else if (t.IsKeyword("IN") ||
               (t.IsKeyword("NOT") && Peek(1).IsKeyword("IN"))) {
      bool neg = t.IsKeyword("NOT");
      if (neg) Advance();
      Advance();  // IN
      SPHERE_RETURN_NOT_OK(ExpectOperator("("));
      std::vector<ExprPtr> list;
      do {
        SPHERE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        list.push_back(std::move(e));
      } while (MatchOperator(","));
      SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
      return ExprPtr(std::make_unique<InExpr>(std::move(left), std::move(list), neg));
    } else {
      return left;
    }
    Advance();
    SPHERE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
}

Result<ExprPtr> Parser::ParseAdditive() {
  SPHERE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Peek().IsOperator("+")) op = BinaryOp::kAdd;
    else if (Peek().IsOperator("-")) op = BinaryOp::kSub;
    else if (Peek().IsOperator("||")) op = BinaryOp::kConcat;
    else return left;
    Advance();
    SPHERE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  SPHERE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Peek().IsOperator("*")) op = BinaryOp::kMul;
    else if (Peek().IsOperator("/")) op = BinaryOp::kDiv;
    else if (Peek().IsOperator("%")) op = BinaryOp::kMod;
    else return left;
    Advance();
    SPHERE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchOperator("-")) {
    SPHERE_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(child)));
  }
  MatchOperator("+");
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value(t.int_value)));
    case TokenType::kDoubleLiteral:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value(t.double_value)));
    case TokenType::kStringLiteral:
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value(t.text)));
    case TokenType::kParam:
      Advance();
      return ExprPtr(std::make_unique<ParamExpr>(param_count_++));
    case TokenType::kOperator:
      if (t.IsOperator("(")) {
        Advance();
        SPHERE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
        return inner;
      }
      break;
    case TokenType::kKeyword:
      if (t.IsKeyword("NULL")) {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
      }
      if (t.IsKeyword("CASE")) {
        Advance();
        auto c = std::make_unique<CaseExpr>();
        while (Peek().IsKeyword("WHEN")) {
          Advance();
          SPHERE_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
          SPHERE_RETURN_NOT_OK(ExpectKeyword("THEN"));
          SPHERE_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
          c->branches.emplace_back(std::move(when), std::move(then));
        }
        if (MatchKeyword("ELSE")) {
          SPHERE_ASSIGN_OR_RETURN(c->else_expr, ParseExpr());
        }
        SPHERE_RETURN_NOT_OK(ExpectKeyword("END"));
        return ExprPtr(std::move(c));
      }
      // Other reserved words cannot start an expression (quote identifiers
      // that collide with keywords).
      return ErrorHere("expected expression");
    case TokenType::kIdentifier: {
      // Function call, qualified column, or bare column.
      std::string first = Advance().text;
      if (Peek().IsOperator("(")) {
        Advance();
        auto func = std::make_unique<FuncCallExpr>(first, std::vector<ExprPtr>{});
        if (Peek().IsOperator("*")) {
          Advance();
          func->star = true;
        } else if (!Peek().IsOperator(")")) {
          if (MatchKeyword("DISTINCT")) func->distinct = true;
          do {
            SPHERE_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            func->args.push_back(std::move(a));
          } while (MatchOperator(","));
        }
        SPHERE_RETURN_NOT_OK(ExpectOperator(")"));
        return ExprPtr(std::move(func));
      }
      if (Peek().IsOperator(".")) {
        Advance();
        SPHERE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        return ExprPtr(std::make_unique<ColumnRefExpr>(first, std::move(col)));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
    }
    default:
      break;
  }
  return ErrorHere("expected expression");
}

Result<StatementPtr> ParseSQL(std::string_view sql) {
  Parser parser;
  return parser.Parse(sql);
}

Result<StatementPtr> ParseSQL(std::string_view sql, const Dialect& dialect) {
  Parser parser(dialect);
  return parser.Parse(sql);
}

Result<SharedStatement> ParseShared(std::string_view sql,
                                    const Dialect& dialect) {
  // Shared ASTs are cache/long-lived by contract, so the tree is always
  // heap-built: suspend any statement arena for the duration of the parse.
  // (Plain Parser::Parse inherits the caller's arena regime — node factories
  // are arena-aware through Statement/Expr's ArenaManaged base.)
  ArenaSuspend heap_scope;
  Parser parser(dialect);
  SPHERE_ASSIGN_OR_RETURN(StatementPtr stmt, parser.Parse(sql));
  SharedStatement shared;
  shared.stmt = std::shared_ptr<const Statement>(std::move(stmt));
  shared.param_count = parser.param_count();
  return shared;
}

}  // namespace sphere::sql
