#ifndef SPHERE_SQL_AST_H_
#define SPHERE_SQL_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/schema.h"
#include "common/value.h"

namespace sphere::sql {

class Dialect;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParam,
  kUnary,
  kBinary,
  kBetween,
  kIn,
  kFuncCall,
  kCase,
};

/// Binary operators (comparison, arithmetic, logical).
enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
  kLike, kNotLike,
  kConcat,
};

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

const char* BinaryOpSymbol(BinaryOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of every SQL expression node. Nodes are owned via unique_ptr
/// and support deep Clone (the rewriter mutates cloned trees) and SQL
/// re-serialization.
///
/// ArenaManaged: inside a statement's ArenaScope, `make_unique`/`Clone`
/// bump-allocate nodes that are reclaimed wholesale at statement end; trees
/// destined for caches must be built under ArenaSuspend (DESIGN.md §12).
class Expr : public ArenaManaged {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  virtual ExprPtr Clone() const = 0;
  /// Serializes back to SQL text in the given dialect.
  virtual std::string ToSQL(const Dialect& dialect) const = 0;

 private:
  ExprKind kind_;
};

/// A constant literal.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  Value value;
  ExprPtr Clone() const override { return std::make_unique<LiteralExpr>(value); }
  std::string ToSQL(const Dialect& dialect) const override;
};

/// A (possibly table-qualified) column reference.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string tbl, std::string col)
      : Expr(ExprKind::kColumnRef), table(std::move(tbl)), column(std::move(col)) {}
  std::string table;  ///< qualifier (may be empty)
  std::string column;
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(table, column);
  }
  std::string ToSQL(const Dialect& dialect) const override;
};

/// A `?` placeholder; `index` is the 0-based parameter position.
class ParamExpr : public Expr {
 public:
  explicit ParamExpr(int idx) : Expr(ExprKind::kParam), index(idx) {}
  int index;
  ExprPtr Clone() const override { return std::make_unique<ParamExpr>(index); }
  std::string ToSQL(const Dialect& dialect) const override;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp o, ExprPtr c)
      : Expr(ExprKind::kUnary), op(o), child(std::move(c)) {}
  UnaryOp op;
  ExprPtr child;
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op, child->Clone());
  }
  std::string ToSQL(const Dialect& dialect) const override;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  BinaryOp op;
  ExprPtr left, right;
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op, left->Clone(), right->Clone());
  }
  std::string ToSQL(const Dialect& dialect) const override;
};

class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr e, ExprPtr lo, ExprPtr hi, bool neg)
      : Expr(ExprKind::kBetween), expr(std::move(e)), low(std::move(lo)),
        high(std::move(hi)), negated(neg) {}
  ExprPtr expr, low, high;
  bool negated;
  ExprPtr Clone() const override {
    return std::make_unique<BetweenExpr>(expr->Clone(), low->Clone(),
                                         high->Clone(), negated);
  }
  std::string ToSQL(const Dialect& dialect) const override;
};

class InExpr : public Expr {
 public:
  InExpr(ExprPtr e, std::vector<ExprPtr> l, bool neg)
      : Expr(ExprKind::kIn), expr(std::move(e)), list(std::move(l)), negated(neg) {}
  ExprPtr expr;
  std::vector<ExprPtr> list;
  bool negated;
  ExprPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

/// Function call; also represents aggregates (COUNT/SUM/MIN/MAX/AVG) and
/// COUNT(*) (star==true).
class FuncCallExpr : public Expr {
 public:
  FuncCallExpr(std::string n, std::vector<ExprPtr> a, bool dist = false,
               bool st = false)
      : Expr(ExprKind::kFuncCall), name(std::move(n)), args(std::move(a)),
        distinct(dist), star(st) {}
  std::string name;
  std::vector<ExprPtr> args;
  bool distinct;
  bool star;
  /// True when this is one of the five aggregate functions.
  bool IsAggregate() const;
  ExprPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

/// CASE WHEN ... THEN ... [ELSE ...] END (searched form).
class CaseExpr : public Expr {
 public:
  CaseExpr() : Expr(ExprKind::kCase) {}
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  ExprPtr else_expr;  ///< may be null
  ExprPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

/// Deep-walks an expression tree, invoking `fn` on every node (pre-order).
void WalkExpr(const Expr* e, const std::function<void(const Expr*)>& fn);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kTruncate,
  kCreateIndex,
  kBegin,
  kCommit,
  kRollback,
  kSet,
  kShow,
  kUse,
};

/// Lowercase name for trace attributes / diagnostics.
constexpr const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect: return "select";
    case StatementKind::kInsert: return "insert";
    case StatementKind::kUpdate: return "update";
    case StatementKind::kDelete: return "delete";
    case StatementKind::kCreateTable: return "create_table";
    case StatementKind::kDropTable: return "drop_table";
    case StatementKind::kTruncate: return "truncate";
    case StatementKind::kCreateIndex: return "create_index";
    case StatementKind::kBegin: return "begin";
    case StatementKind::kCommit: return "commit";
    case StatementKind::kRollback: return "rollback";
    case StatementKind::kSet: return "set";
    case StatementKind::kShow: return "show";
    case StatementKind::kUse: return "use";
  }
  return "unknown";
}

class Statement : public ArenaManaged {
 public:
  explicit Statement(StatementKind kind) : kind_(kind) {}
  virtual ~Statement() = default;
  StatementKind kind() const { return kind_; }
  virtual std::unique_ptr<Statement> Clone() const = 0;
  virtual std::string ToSQL(const Dialect& dialect) const = 0;

  /// True for DML/DQL, false for DDL/TCL/DCL (which broadcast-route).
  bool IsDML() const {
    return kind_ == StatementKind::kSelect || kind_ == StatementKind::kInsert ||
           kind_ == StatementKind::kUpdate || kind_ == StatementKind::kDelete;
  }

 private:
  StatementKind kind_;
};

using StatementPtr = std::unique_ptr<Statement>;

/// One physical or logical table reference in FROM.
struct TableRef {
  std::string name;
  std::string alias;  ///< empty when none
  /// The name queries use to qualify columns of this table.
  const std::string& EffectiveName() const { return alias.empty() ? name : alias; }
};

/// One item of a SELECT list.
struct SelectItem {
  ExprPtr expr;        ///< null when is_star
  std::string alias;   ///< empty when none
  bool is_star = false;
  std::string star_qualifier;  ///< `t.*` qualifier, empty for bare `*`

  SelectItem() = default;
  SelectItem(ExprPtr e, std::string a)
      : expr(std::move(e)), alias(std::move(a)) {}
  SelectItem Clone() const;
  /// The output column label (alias, column name, or expression text).
  std::string Label(const Dialect& dialect) const;
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
  OrderByItem() = default;
  OrderByItem(ExprPtr e, bool d) : expr(std::move(e)), desc(d) {}
  OrderByItem Clone() const { return OrderByItem(expr->Clone(), desc); }
};

/// LIMIT/OFFSET clause. Values may be parameters; after binding they are
/// plain numbers.
struct LimitClause {
  int64_t offset = 0;
  int64_t count = -1;  ///< -1 = no count limit (OFFSET only)
};

struct JoinClause {
  enum class Type { kInner, kLeft, kRight, kCross };
  Type type = Type::kInner;
  TableRef table;
  ExprPtr on;  ///< may be null for CROSS
  JoinClause Clone() const;
};

class SelectStatement : public Statement {
 public:
  SelectStatement() : Statement(StatementKind::kSelect) {}
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;        ///< comma-separated tables
  std::vector<JoinClause> joins;     ///< explicit JOIN ... ON
  ExprPtr where;                     ///< may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                    ///< may be null
  std::vector<OrderByItem> order_by;
  std::optional<LimitClause> limit;
  bool for_update = false;

  /// All table refs (FROM plus JOINs) in order.
  std::vector<const TableRef*> AllTables() const;
  /// True when any select item is an aggregate function call.
  bool HasAggregation() const;

  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

class InsertStatement : public Statement {
 public:
  InsertStatement() : Statement(StatementKind::kInsert) {}
  TableRef table;
  std::vector<std::string> columns;         ///< may be empty (= all columns)
  std::vector<std::vector<ExprPtr>> rows;   ///< VALUES tuples
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

struct Assignment {
  std::string column;
  ExprPtr value;
  Assignment Clone() const { return {column, value->Clone()}; }
};

class UpdateStatement : public Statement {
 public:
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  TableRef table;
  std::vector<Assignment> assignments;
  ExprPtr where;  ///< may be null
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

class DeleteStatement : public Statement {
 public:
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  TableRef table;
  ExprPtr where;  ///< may be null
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  std::string raw_type;  ///< dialect type text, e.g. "VARCHAR(120)"
  bool primary_key = false;
  bool not_null = false;
};

class CreateTableStatement : public Statement {
 public:
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::string table;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

class DropTableStatement : public Statement {
 public:
  DropTableStatement() : Statement(StatementKind::kDropTable) {}
  std::string table;
  bool if_exists = false;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

class TruncateStatement : public Statement {
 public:
  TruncateStatement() : Statement(StatementKind::kTruncate) {}
  std::string table;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

class CreateIndexStatement : public Statement {
 public:
  CreateIndexStatement() : Statement(StatementKind::kCreateIndex) {}
  std::string index_name;
  std::string table;
  std::vector<std::string> columns;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

/// BEGIN / START TRANSACTION, COMMIT, ROLLBACK.
class TclStatement : public Statement {
 public:
  explicit TclStatement(StatementKind kind) : Statement(kind) {}
  StatementPtr Clone() const override {
    return std::make_unique<TclStatement>(kind());
  }
  std::string ToSQL(const Dialect& dialect) const override;
};

/// SET name = value.
class SetStatement : public Statement {
 public:
  SetStatement() : Statement(StatementKind::kSet) {}
  std::string name;
  Value value;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

/// SHOW <what> (passthrough/diagnostic).
class ShowStatement : public Statement {
 public:
  ShowStatement() : Statement(StatementKind::kShow) {}
  std::string what;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

/// USE <schema>.
class UseStatement : public Statement {
 public:
  UseStatement() : Statement(StatementKind::kUse) {}
  std::string schema;
  StatementPtr Clone() const override;
  std::string ToSQL(const Dialect& dialect) const override;
};

}  // namespace sphere::sql

#endif  // SPHERE_SQL_AST_H_
