#ifndef SPHERE_SQL_TOKEN_H_
#define SPHERE_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace sphere::sql {

/// Lexical token categories.
enum class TokenType {
  kEof,
  kIdentifier,   ///< bare or quoted identifier
  kKeyword,      ///< identifier matching a reserved word (text preserved)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kParam,        ///< '?' placeholder
  kOperator,     ///< punctuation / operator, text holds the exact symbol
};

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;       ///< identifier/keyword/operator text (original case)
  int64_t int_value = 0;  ///< kIntLiteral
  double double_value = 0;  ///< kDoubleLiteral
  size_t pos = 0;         ///< byte offset in the statement

  bool IsKeyword(const char* kw) const;
  bool IsOperator(const char* op) const;
};

/// True if `word` is a SQL reserved word in this engine's grammar.
bool IsReservedWord(const std::string& word);

}  // namespace sphere::sql

#endif  // SPHERE_SQL_TOKEN_H_
