#ifndef SPHERE_SQL_DIALECT_H_
#define SPHERE_SQL_DIALECT_H_

#include <string>

namespace sphere::sql {

enum class DialectType { kMySQL, kPostgreSQL };

/// SQL dialect knobs used for parsing tolerance and re-serialization. The SQL
/// engine keeps per-database dialect dictionaries so one logical SQL can be
/// rewritten into the syntax each underlying database expects (paper §VI-A).
class Dialect {
 public:
  explicit Dialect(DialectType type) : type_(type) {}

  DialectType type() const { return type_; }
  const char* Name() const {
    return type_ == DialectType::kMySQL ? "MySQL" : "PostgreSQL";
  }

  /// Quotes an identifier (` for MySQL, " for PostgreSQL) when needed.
  std::string QuoteIdentifier(const std::string& ident) const;

  /// Renders a LIMIT clause: MySQL `LIMIT off, cnt`, PostgreSQL
  /// `LIMIT cnt OFFSET off`.
  std::string RenderLimit(int64_t offset, int64_t count) const;

  /// True when the dialect accepts `LIMIT a, b` shorthand while parsing.
  bool SupportsCommaLimit() const { return type_ == DialectType::kMySQL; }

  static const Dialect& MySQL();
  static const Dialect& PostgreSQL();
  static const Dialect& Get(DialectType t);

 private:
  DialectType type_;
};

}  // namespace sphere::sql

#endif  // SPHERE_SQL_DIALECT_H_
