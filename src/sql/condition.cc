#include "sql/condition.h"

#include "common/strings.h"

namespace sphere::sql {

std::optional<Value> EvalConstExpr(const Expr* expr,
                                   const std::vector<Value>& params) {
  if (expr == nullptr) return std::nullopt;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr*>(expr)->value;
    case ExprKind::kParam: {
      int idx = static_cast<const ParamExpr*>(expr)->index;
      if (idx < 0 || static_cast<size_t>(idx) >= params.size()) {
        return std::nullopt;
      }
      return params[static_cast<size_t>(idx)];
    }
    case ExprKind::kUnary: {
      const auto* u = static_cast<const UnaryExpr*>(expr);
      if (u->op != UnaryOp::kNeg) return std::nullopt;
      auto v = EvalConstExpr(u->child.get(), params);
      if (!v) return std::nullopt;
      if (v->is_int()) return Value(-v->AsInt());
      if (v->is_double()) return Value(-v->AsDouble());
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

namespace {

/// Builds a ColumnCondition from a leaf predicate, or nullopt if it is not a
/// simple column-vs-constant predicate.
std::optional<ColumnCondition> LeafCondition(const Expr* e,
                                             const std::vector<Value>& params) {
  if (e->kind() == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    const Expr* col_side = nullptr;
    const Expr* val_side = nullptr;
    bool flipped = false;
    if (b->left->kind() == ExprKind::kColumnRef) {
      col_side = b->left.get();
      val_side = b->right.get();
    } else if (b->right->kind() == ExprKind::kColumnRef) {
      col_side = b->right.get();
      val_side = b->left.get();
      flipped = true;
    } else {
      return std::nullopt;
    }
    auto v = EvalConstExpr(val_side, params);
    if (!v) return std::nullopt;
    const auto* col = static_cast<const ColumnRefExpr*>(col_side);
    ColumnCondition c;
    c.table = col->table;
    c.column = col->column;
    BinaryOp op = b->op;
    if (flipped) {
      // value OP column  ==  column OP' value
      switch (op) {
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kLe: op = BinaryOp::kGe; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        case BinaryOp::kGe: op = BinaryOp::kLe; break;
        default: break;
      }
    }
    switch (op) {
      case BinaryOp::kEq:
        c.kind = ColumnCondition::Kind::kEqual;
        c.values.push_back(*v);
        return c;
      case BinaryOp::kLt:
        c.kind = ColumnCondition::Kind::kRange;
        c.high = *v;
        c.high_inclusive = false;
        return c;
      case BinaryOp::kLe:
        c.kind = ColumnCondition::Kind::kRange;
        c.high = *v;
        return c;
      case BinaryOp::kGt:
        c.kind = ColumnCondition::Kind::kRange;
        c.low = *v;
        c.low_inclusive = false;
        return c;
      case BinaryOp::kGe:
        c.kind = ColumnCondition::Kind::kRange;
        c.low = *v;
        return c;
      default:
        return std::nullopt;
    }
  }
  if (e->kind() == ExprKind::kBetween) {
    const auto* b = static_cast<const BetweenExpr*>(e);
    if (b->negated || b->expr->kind() != ExprKind::kColumnRef) return std::nullopt;
    auto lo = EvalConstExpr(b->low.get(), params);
    auto hi = EvalConstExpr(b->high.get(), params);
    if (!lo || !hi) return std::nullopt;
    const auto* col = static_cast<const ColumnRefExpr*>(b->expr.get());
    ColumnCondition c;
    c.table = col->table;
    c.column = col->column;
    c.kind = ColumnCondition::Kind::kRange;
    c.low = *lo;
    c.high = *hi;
    return c;
  }
  if (e->kind() == ExprKind::kIn) {
    const auto* in = static_cast<const InExpr*>(e);
    if (in->negated || in->expr->kind() != ExprKind::kColumnRef) return std::nullopt;
    ColumnCondition c;
    const auto* col = static_cast<const ColumnRefExpr*>(in->expr.get());
    c.table = col->table;
    c.column = col->column;
    c.kind = ColumnCondition::Kind::kIn;
    for (const auto& item : in->list) {
      auto v = EvalConstExpr(item.get(), params);
      if (!v) return std::nullopt;
      c.values.push_back(*v);
    }
    return c;
  }
  return std::nullopt;
}

/// Recursively produces the OR-of-AND condition groups for an expression.
ArenaVector<ConditionGroup> Extract(const Expr* e,
                                    const std::vector<Value>& params) {
  if (e->kind() == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(e);
    if (b->op == BinaryOp::kOr) {
      auto left = Extract(b->left.get(), params);
      auto right = Extract(b->right.get(), params);
      left.insert(left.end(), std::make_move_iterator(right.begin()),
                  std::make_move_iterator(right.end()));
      return left;
    }
    if (b->op == BinaryOp::kAnd) {
      auto left = Extract(b->left.get(), params);
      auto right = Extract(b->right.get(), params);
      // Cross-product of the two disjunctions.
      ArenaVector<ConditionGroup> out;
      out.reserve(left.size() * right.size());
      for (const auto& l : left) {
        for (const auto& r : right) {
          ConditionGroup g = l;
          g.insert(g.end(), r.begin(), r.end());
          out.push_back(std::move(g));
        }
      }
      return out;
    }
  }
  ArenaVector<ConditionGroup> out(1);
  if (auto leaf = LeafCondition(e, params)) {
    out[0].push_back(std::move(*leaf));
  }
  return out;
}

}  // namespace

ArenaVector<ConditionGroup> ExtractConditionGroups(
    const Expr* where, const std::vector<Value>& params) {
  if (where == nullptr) return {};
  return Extract(where, params);
}

std::optional<std::vector<Value>> ExtractInsertValues(
    const InsertStatement& insert, const std::string& column,
    const std::vector<Value>& params) {
  int col_idx = -1;
  for (size_t i = 0; i < insert.columns.size(); ++i) {
    if (EqualsIgnoreCase(insert.columns[i], column)) {
      col_idx = static_cast<int>(i);
      break;
    }
  }
  if (col_idx < 0) return std::nullopt;
  std::vector<Value> out;
  out.reserve(insert.rows.size());
  for (const auto& row : insert.rows) {
    if (static_cast<size_t>(col_idx) >= row.size()) return std::nullopt;
    auto v = EvalConstExpr(row[static_cast<size_t>(col_idx)].get(), params);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

ExprPtr InlineParamsExpr(const Expr* expr, const std::vector<Value>& params) {
  if (expr == nullptr) return nullptr;
  switch (expr->kind()) {
    case ExprKind::kParam: {
      int idx = static_cast<const ParamExpr*>(expr)->index;
      Value v = (idx >= 0 && static_cast<size_t>(idx) < params.size())
                    ? params[static_cast<size_t>(idx)]
                    : Value::Null();
      return std::make_unique<LiteralExpr>(std::move(v));
    }
    case ExprKind::kUnary: {
      const auto* u = static_cast<const UnaryExpr*>(expr);
      return std::make_unique<UnaryExpr>(u->op,
                                         InlineParamsExpr(u->child.get(), params));
    }
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(expr);
      return std::make_unique<BinaryExpr>(b->op,
                                          InlineParamsExpr(b->left.get(), params),
                                          InlineParamsExpr(b->right.get(), params));
    }
    case ExprKind::kBetween: {
      const auto* b = static_cast<const BetweenExpr*>(expr);
      return std::make_unique<BetweenExpr>(
          InlineParamsExpr(b->expr.get(), params),
          InlineParamsExpr(b->low.get(), params),
          InlineParamsExpr(b->high.get(), params), b->negated);
    }
    case ExprKind::kIn: {
      const auto* in = static_cast<const InExpr*>(expr);
      std::vector<ExprPtr> list;
      list.reserve(in->list.size());
      for (const auto& i : in->list) list.push_back(InlineParamsExpr(i.get(), params));
      return std::make_unique<InExpr>(InlineParamsExpr(in->expr.get(), params),
                                      std::move(list), in->negated);
    }
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(expr);
      std::vector<ExprPtr> args;
      args.reserve(f->args.size());
      for (const auto& a : f->args) args.push_back(InlineParamsExpr(a.get(), params));
      return std::make_unique<FuncCallExpr>(f->name, std::move(args), f->distinct,
                                            f->star);
    }
    case ExprKind::kCase: {
      const auto* c = static_cast<const CaseExpr*>(expr);
      auto out = std::make_unique<CaseExpr>();
      for (const auto& [w, t] : c->branches) {
        out->branches.emplace_back(InlineParamsExpr(w.get(), params),
                                   InlineParamsExpr(t.get(), params));
      }
      if (c->else_expr) out->else_expr = InlineParamsExpr(c->else_expr.get(), params);
      return out;
    }
    default:
      return expr->Clone();
  }
}

StatementPtr InlineParameters(const Statement& stmt,
                              const std::vector<Value>& params) {
  StatementPtr clone = stmt.Clone();
  switch (clone->kind()) {
    case StatementKind::kSelect: {
      auto* sel = static_cast<SelectStatement*>(clone.get());
      for (auto& item : sel->items) {
        if (item.expr) item.expr = InlineParamsExpr(item.expr.get(), params);
      }
      for (auto& j : sel->joins) {
        if (j.on) j.on = InlineParamsExpr(j.on.get(), params);
      }
      if (sel->where) sel->where = InlineParamsExpr(sel->where.get(), params);
      for (auto& g : sel->group_by) g = InlineParamsExpr(g.get(), params);
      if (sel->having) sel->having = InlineParamsExpr(sel->having.get(), params);
      for (auto& o : sel->order_by) o.expr = InlineParamsExpr(o.expr.get(), params);
      break;
    }
    case StatementKind::kInsert: {
      auto* ins = static_cast<InsertStatement*>(clone.get());
      for (auto& row : ins->rows) {
        for (auto& e : row) e = InlineParamsExpr(e.get(), params);
      }
      break;
    }
    case StatementKind::kUpdate: {
      auto* up = static_cast<UpdateStatement*>(clone.get());
      for (auto& a : up->assignments) a.value = InlineParamsExpr(a.value.get(), params);
      if (up->where) up->where = InlineParamsExpr(up->where.get(), params);
      break;
    }
    case StatementKind::kDelete: {
      auto* del = static_cast<DeleteStatement*>(clone.get());
      if (del->where) del->where = InlineParamsExpr(del->where.get(), params);
      break;
    }
    default:
      break;
  }
  return clone;
}

}  // namespace sphere::sql
