#ifndef SPHERE_SQL_LEXER_H_
#define SPHERE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace sphere::sql {

/// Converts a SQL statement string into a token stream. Handles identifier
/// quoting for both MySQL (`id`) and PostgreSQL ("id") dialects, single-quoted
/// strings with '' escaping, line (--) and block comments, and ? parameters.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Tokenizes the whole input. Fails with SyntaxError on malformed input
  /// (unterminated string/comment, unknown character).
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> NextToken();
  void SkipWhitespaceAndComments(bool* error);

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace sphere::sql

#endif  // SPHERE_SQL_LEXER_H_
