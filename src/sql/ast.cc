#include "sql/ast.h"

#include "common/strings.h"
#include "sql/dialect.h"

namespace sphere::sql {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

std::string LiteralExpr::ToSQL(const Dialect&) const {
  return value.ToSQLLiteral();
}

std::string ColumnRefExpr::ToSQL(const Dialect& dialect) const {
  if (table.empty()) return dialect.QuoteIdentifier(column);
  return dialect.QuoteIdentifier(table) + "." + dialect.QuoteIdentifier(column);
}

std::string ParamExpr::ToSQL(const Dialect&) const { return "?"; }

std::string UnaryExpr::ToSQL(const Dialect& dialect) const {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT (" + child->ToSQL(dialect) + ")";
    case UnaryOp::kNeg:
      return "-(" + child->ToSQL(dialect) + ")";
    case UnaryOp::kIsNull:
      return child->ToSQL(dialect) + " IS NULL";
    case UnaryOp::kIsNotNull:
      return child->ToSQL(dialect) + " IS NOT NULL";
  }
  return "";
}

std::string BinaryExpr::ToSQL(const Dialect& dialect) const {
  return "(" + left->ToSQL(dialect) + " " + BinaryOpSymbol(op) + " " +
         right->ToSQL(dialect) + ")";
}

std::string BetweenExpr::ToSQL(const Dialect& dialect) const {
  return expr->ToSQL(dialect) + (negated ? " NOT BETWEEN " : " BETWEEN ") +
         low->ToSQL(dialect) + " AND " + high->ToSQL(dialect);
}

ExprPtr InExpr::Clone() const {
  std::vector<ExprPtr> l;
  l.reserve(list.size());
  for (const auto& e : list) l.push_back(e->Clone());
  return std::make_unique<InExpr>(expr->Clone(), std::move(l), negated);
}

std::string InExpr::ToSQL(const Dialect& dialect) const {
  std::string out = expr->ToSQL(dialect) + (negated ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < list.size(); ++i) {
    if (i) out += ", ";
    out += list[i]->ToSQL(dialect);
  }
  out += ")";
  return out;
}

bool FuncCallExpr::IsAggregate() const {
  return EqualsIgnoreCase(name, "COUNT") || EqualsIgnoreCase(name, "SUM") ||
         EqualsIgnoreCase(name, "MIN") || EqualsIgnoreCase(name, "MAX") ||
         EqualsIgnoreCase(name, "AVG");
}

ExprPtr FuncCallExpr::Clone() const {
  std::vector<ExprPtr> a;
  a.reserve(args.size());
  for (const auto& e : args) a.push_back(e->Clone());
  return std::make_unique<FuncCallExpr>(name, std::move(a), distinct, star);
}

std::string FuncCallExpr::ToSQL(const Dialect& dialect) const {
  std::string out = ToUpper(name) + "(";
  if (star) {
    out += "*";
  } else {
    if (distinct) out += "DISTINCT ";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i) out += ", ";
      out += args[i]->ToSQL(dialect);
    }
  }
  out += ")";
  return out;
}

ExprPtr CaseExpr::Clone() const {
  auto c = std::make_unique<CaseExpr>();
  for (const auto& [w, t] : branches) {
    c->branches.emplace_back(w->Clone(), t->Clone());
  }
  if (else_expr) c->else_expr = else_expr->Clone();
  return c;
}

std::string CaseExpr::ToSQL(const Dialect& dialect) const {
  std::string out = "CASE";
  for (const auto& [w, t] : branches) {
    out += " WHEN " + w->ToSQL(dialect) + " THEN " + t->ToSQL(dialect);
  }
  if (else_expr) out += " ELSE " + else_expr->ToSQL(dialect);
  out += " END";
  return out;
}

void WalkExpr(const Expr* e, const std::function<void(const Expr*)>& fn) {
  if (e == nullptr) return;
  fn(e);
  switch (e->kind()) {
    case ExprKind::kUnary:
      WalkExpr(static_cast<const UnaryExpr*>(e)->child.get(), fn);
      break;
    case ExprKind::kBinary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      WalkExpr(b->left.get(), fn);
      WalkExpr(b->right.get(), fn);
      break;
    }
    case ExprKind::kBetween: {
      const auto* b = static_cast<const BetweenExpr*>(e);
      WalkExpr(b->expr.get(), fn);
      WalkExpr(b->low.get(), fn);
      WalkExpr(b->high.get(), fn);
      break;
    }
    case ExprKind::kIn: {
      const auto* in = static_cast<const InExpr*>(e);
      WalkExpr(in->expr.get(), fn);
      for (const auto& i : in->list) WalkExpr(i.get(), fn);
      break;
    }
    case ExprKind::kFuncCall: {
      const auto* f = static_cast<const FuncCallExpr*>(e);
      for (const auto& a : f->args) WalkExpr(a.get(), fn);
      break;
    }
    case ExprKind::kCase: {
      const auto* c = static_cast<const CaseExpr*>(e);
      for (const auto& [w, t] : c->branches) {
        WalkExpr(w.get(), fn);
        WalkExpr(t.get(), fn);
      }
      WalkExpr(c->else_expr.get(), fn);
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

SelectItem SelectItem::Clone() const {
  SelectItem item;
  item.expr = expr ? expr->Clone() : nullptr;
  item.alias = alias;
  item.is_star = is_star;
  item.star_qualifier = star_qualifier;
  return item;
}

std::string SelectItem::Label(const Dialect& dialect) const {
  if (!alias.empty()) return alias;
  if (is_star) return "*";
  if (expr->kind() == ExprKind::kColumnRef) {
    return static_cast<const ColumnRefExpr*>(expr.get())->column;
  }
  return expr->ToSQL(dialect);
}

JoinClause JoinClause::Clone() const {
  JoinClause j;
  j.type = type;
  j.table = table;
  j.on = on ? on->Clone() : nullptr;
  return j;
}

std::vector<const TableRef*> SelectStatement::AllTables() const {
  std::vector<const TableRef*> out;
  for (const auto& t : from) out.push_back(&t);
  for (const auto& j : joins) out.push_back(&j.table);
  return out;
}

bool SelectStatement::HasAggregation() const {
  for (const auto& item : items) {
    if (item.expr && item.expr->kind() == ExprKind::kFuncCall &&
        static_cast<const FuncCallExpr*>(item.expr.get())->IsAggregate()) {
      return true;
    }
  }
  return false;
}

StatementPtr SelectStatement::Clone() const {
  auto s = std::make_unique<SelectStatement>();
  s->distinct = distinct;
  for (const auto& item : items) s->items.push_back(item.Clone());
  s->from = from;
  for (const auto& j : joins) s->joins.push_back(j.Clone());
  s->where = where ? where->Clone() : nullptr;
  for (const auto& g : group_by) s->group_by.push_back(g->Clone());
  s->having = having ? having->Clone() : nullptr;
  for (const auto& o : order_by) s->order_by.push_back(o.Clone());
  s->limit = limit;
  s->for_update = for_update;
  return s;
}

namespace {
std::string RenderTableRef(const TableRef& t, const Dialect& dialect) {
  std::string out = dialect.QuoteIdentifier(t.name);
  if (!t.alias.empty()) out += " " + dialect.QuoteIdentifier(t.alias);
  return out;
}
}  // namespace

std::string SelectStatement::ToSQL(const Dialect& dialect) const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    const auto& item = items[i];
    if (item.is_star) {
      if (!item.star_qualifier.empty()) {
        out += dialect.QuoteIdentifier(item.star_qualifier) + ".*";
      } else {
        out += "*";
      }
    } else {
      out += item.expr->ToSQL(dialect);
      if (!item.alias.empty()) out += " AS " + dialect.QuoteIdentifier(item.alias);
    }
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i) out += ", ";
      out += RenderTableRef(from[i], dialect);
    }
    for (const auto& j : joins) {
      switch (j.type) {
        case JoinClause::Type::kInner: out += " JOIN "; break;
        case JoinClause::Type::kLeft: out += " LEFT JOIN "; break;
        case JoinClause::Type::kRight: out += " RIGHT JOIN "; break;
        case JoinClause::Type::kCross: out += " CROSS JOIN "; break;
      }
      out += RenderTableRef(j.table, dialect);
      if (j.on) out += " ON " + j.on->ToSQL(dialect);
    }
  }
  if (where) out += " WHERE " + where->ToSQL(dialect);
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i]->ToSQL(dialect);
    }
  }
  if (having) out += " HAVING " + having->ToSQL(dialect);
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].expr->ToSQL(dialect);
      if (order_by[i].desc) out += " DESC";
    }
  }
  if (limit.has_value()) {
    std::string lim = dialect.RenderLimit(limit->offset, limit->count);
    if (!lim.empty()) out += " " + lim;
  }
  if (for_update) out += " FOR UPDATE";
  return out;
}

StatementPtr InsertStatement::Clone() const {
  auto s = std::make_unique<InsertStatement>();
  s->table = table;
  s->columns = columns;
  for (const auto& row : rows) {
    std::vector<ExprPtr> r;
    r.reserve(row.size());
    for (const auto& e : row) r.push_back(e->Clone());
    s->rows.push_back(std::move(r));
  }
  return s;
}

std::string InsertStatement::ToSQL(const Dialect& dialect) const {
  std::string out = "INSERT INTO " + dialect.QuoteIdentifier(table.name);
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) out += ", ";
      out += dialect.QuoteIdentifier(columns[i]);
    }
    out += ")";
  }
  out += " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r) out += ", ";
    out += "(";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i) out += ", ";
      out += rows[r][i]->ToSQL(dialect);
    }
    out += ")";
  }
  return out;
}

StatementPtr UpdateStatement::Clone() const {
  auto s = std::make_unique<UpdateStatement>();
  s->table = table;
  for (const auto& a : assignments) s->assignments.push_back(a.Clone());
  s->where = where ? where->Clone() : nullptr;
  return s;
}

std::string UpdateStatement::ToSQL(const Dialect& dialect) const {
  std::string out = "UPDATE " + RenderTableRef(table, dialect) + " SET ";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i) out += ", ";
    out += dialect.QuoteIdentifier(assignments[i].column) + " = " +
           assignments[i].value->ToSQL(dialect);
  }
  if (where) out += " WHERE " + where->ToSQL(dialect);
  return out;
}

StatementPtr DeleteStatement::Clone() const {
  auto s = std::make_unique<DeleteStatement>();
  s->table = table;
  s->where = where ? where->Clone() : nullptr;
  return s;
}

std::string DeleteStatement::ToSQL(const Dialect& dialect) const {
  std::string out = "DELETE FROM " + RenderTableRef(table, dialect);
  if (where) out += " WHERE " + where->ToSQL(dialect);
  return out;
}

StatementPtr CreateTableStatement::Clone() const {
  auto s = std::make_unique<CreateTableStatement>();
  *s = *this;
  return s;
}

std::string CreateTableStatement::ToSQL(const Dialect& dialect) const {
  std::string out = "CREATE TABLE ";
  if (if_not_exists) out += "IF NOT EXISTS ";
  out += dialect.QuoteIdentifier(table) + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ", ";
    const auto& c = columns[i];
    out += dialect.QuoteIdentifier(c.name) + " ";
    out += c.raw_type.empty() ? ColumnTypeName(c.type) : c.raw_type;
    if (c.primary_key) out += " PRIMARY KEY";
    if (c.not_null) out += " NOT NULL";
  }
  out += ")";
  return out;
}

StatementPtr DropTableStatement::Clone() const {
  auto s = std::make_unique<DropTableStatement>();
  *s = *this;
  return s;
}

std::string DropTableStatement::ToSQL(const Dialect& dialect) const {
  return std::string("DROP TABLE ") + (if_exists ? "IF EXISTS " : "") +
         dialect.QuoteIdentifier(table);
}

StatementPtr TruncateStatement::Clone() const {
  auto s = std::make_unique<TruncateStatement>();
  *s = *this;
  return s;
}

std::string TruncateStatement::ToSQL(const Dialect& dialect) const {
  return "TRUNCATE TABLE " + dialect.QuoteIdentifier(table);
}

StatementPtr CreateIndexStatement::Clone() const {
  auto s = std::make_unique<CreateIndexStatement>();
  *s = *this;
  return s;
}

std::string CreateIndexStatement::ToSQL(const Dialect& dialect) const {
  std::string out = "CREATE INDEX " + dialect.QuoteIdentifier(index_name) +
                    " ON " + dialect.QuoteIdentifier(table) + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ", ";
    out += dialect.QuoteIdentifier(columns[i]);
  }
  out += ")";
  return out;
}

std::string TclStatement::ToSQL(const Dialect&) const {
  switch (kind()) {
    case StatementKind::kBegin: return "BEGIN";
    case StatementKind::kCommit: return "COMMIT";
    case StatementKind::kRollback: return "ROLLBACK";
    default: return "";
  }
}

StatementPtr SetStatement::Clone() const {
  auto s = std::make_unique<SetStatement>();
  *s = *this;
  return s;
}

std::string SetStatement::ToSQL(const Dialect&) const {
  return "SET " + name + " = " + value.ToSQLLiteral();
}

StatementPtr ShowStatement::Clone() const {
  auto s = std::make_unique<ShowStatement>();
  *s = *this;
  return s;
}

std::string ShowStatement::ToSQL(const Dialect&) const { return "SHOW " + what; }

StatementPtr UseStatement::Clone() const {
  auto s = std::make_unique<UseStatement>();
  *s = *this;
  return s;
}

std::string UseStatement::ToSQL(const Dialect& dialect) const {
  return "USE " + dialect.QuoteIdentifier(schema);
}

}  // namespace sphere::sql
