#include "sql/dialect.h"

#include <cctype>

#include "common/strings.h"
#include "sql/token.h"

namespace sphere::sql {

std::string Dialect::QuoteIdentifier(const std::string& ident) const {
  bool needs_quote = ident.empty() || IsReservedWord(ident);
  if (!needs_quote) {
    for (char c : ident) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        needs_quote = true;
        break;
      }
    }
  }
  if (!needs_quote) return ident;
  char q = type_ == DialectType::kMySQL ? '`' : '"';
  std::string out(1, q);
  out += ident;
  out += q;
  return out;
}

std::string Dialect::RenderLimit(int64_t offset, int64_t count) const {
  if (type_ == DialectType::kMySQL) {
    if (offset > 0) return StrFormat("LIMIT %lld, %lld", static_cast<long long>(offset),
                                     static_cast<long long>(count));
    return StrFormat("LIMIT %lld", static_cast<long long>(count));
  }
  std::string out;
  if (count >= 0) out += StrFormat("LIMIT %lld", static_cast<long long>(count));
  if (offset > 0) {
    if (!out.empty()) out += " ";
    out += StrFormat("OFFSET %lld", static_cast<long long>(offset));
  }
  return out;
}

const Dialect& Dialect::MySQL() {
  static const Dialect d(DialectType::kMySQL);
  return d;
}

const Dialect& Dialect::PostgreSQL() {
  static const Dialect d(DialectType::kPostgreSQL);
  return d;
}

const Dialect& Dialect::Get(DialectType t) {
  return t == DialectType::kMySQL ? MySQL() : PostgreSQL();
}

}  // namespace sphere::sql
