#ifndef SPHERE_SQL_CONDITION_H_
#define SPHERE_SQL_CONDITION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/value.h"
#include "sql/ast.h"

namespace sphere::sql {

/// A simple predicate on one column extracted from a WHERE clause, in a form
/// the sharding router can evaluate: equality, IN-list, or range.
///
/// Conditions are statement-scoped scratch: the value list and the group
/// spines below are arena-backed, so per-query extraction on a hot path
/// allocates nothing once a statement arena is warm (plain heap otherwise).
/// Cache-destined plan builds run under ArenaSuspend, which heap-routes them.
struct ColumnCondition {
  enum class Kind { kEqual, kIn, kRange };

  std::string table;   ///< qualifier as written (alias or empty)
  std::string column;
  Kind kind = Kind::kEqual;
  ArenaVector<Value> values;  ///< kEqual: 1 value; kIn: n values
  std::optional<Value> low, high;  ///< kRange bounds (either may be absent)
  bool low_inclusive = true;
  bool high_inclusive = true;
};

/// One AND-connected group of conditions. A WHERE with top-level ORs expands
/// to several groups; route results are unioned across groups.
using ConditionGroup = ArenaVector<ColumnCondition>;

/// Evaluates an expression that must be constant after parameter binding
/// (literal, parameter, or negation of those). Returns nullopt otherwise.
std::optional<Value> EvalConstExpr(const Expr* expr,
                                   const std::vector<Value>& params);

/// Extracts routable condition groups from a WHERE expression.
///
/// The result is a disjunction of conjunctions: `(A AND B) OR (C)` yields two
/// groups. Leaves that are not simple column-vs-constant predicates simply do
/// not contribute a condition (they never make routing incorrect, only less
/// selective). Returns an empty vector when `where` is null (one empty group
/// would mean "no constraints" too; callers treat both as full route).
ArenaVector<ConditionGroup> ExtractConditionGroups(
    const Expr* where, const std::vector<Value>& params);

/// Returns the values of `column` in each VALUES row of an INSERT (resolving
/// parameters); nullopt when the column is absent or any row misses it.
std::optional<std::vector<Value>> ExtractInsertValues(
    const InsertStatement& insert, const std::string& column,
    const std::vector<Value>& params);

/// Deep-clones an expression with every ? placeholder replaced by its bound
/// value, so the text can be re-executed standalone.
ExprPtr InlineParamsExpr(const Expr* expr, const std::vector<Value>& params);

/// Clones a statement with all parameters materialized as literals. Used
/// when a statement must be shipped as self-contained text (replicated state
/// machines, compensation logs).
StatementPtr InlineParameters(const Statement& stmt,
                              const std::vector<Value>& params);

}  // namespace sphere::sql

#endif  // SPHERE_SQL_CONDITION_H_
