#include "sql/lexer.h"

#include <cctype>
#include <charconv>

#include "common/strings.h"

namespace sphere::sql {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
}  // namespace

void Lexer::SkipWhitespaceAndComments(bool* error) {
  *error = false;
  for (;;) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ + 1 < input_.size() && input_[pos_] == '-' &&
        input_[pos_ + 1] == '-') {
      while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      continue;
    }
    if (pos_ + 1 < input_.size() && input_[pos_] == '/' &&
        input_[pos_ + 1] == '*') {
      size_t end = input_.find("*/", pos_ + 2);
      if (end == std::string_view::npos) {
        *error = true;
        return;
      }
      pos_ = end + 2;
      continue;
    }
    return;
  }
}

Result<Token> Lexer::NextToken() {
  bool comment_error = false;
  SkipWhitespaceAndComments(&comment_error);
  if (comment_error) {
    return Status::SyntaxError("unterminated block comment");
  }
  Token t;
  t.pos = pos_;
  if (pos_ >= input_.size()) {
    t.type = TokenType::kEof;
    return t;
  }
  char c = input_[pos_];

  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (pos_ < input_.size() && IsIdentChar(input_[pos_])) ++pos_;
    t.text = std::string(input_.substr(start, pos_ - start));
    t.type = IsReservedWord(t.text) ? TokenType::kKeyword
                                    : TokenType::kIdentifier;
    return t;
  }

  // Quoted identifiers: `x` (MySQL) or "x" (PostgreSQL / SQL-92).
  if (c == '`' || c == '"') {
    char quote = c;
    ++pos_;
    std::string ident;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      ident += input_[pos_++];
    }
    if (pos_ >= input_.size()) {
      return Status::SyntaxError("unterminated quoted identifier");
    }
    ++pos_;
    t.type = TokenType::kIdentifier;
    t.text = std::move(ident);
    return t;
  }

  if (c == '\'') {
    ++pos_;
    std::string s;
    for (;;) {
      if (pos_ >= input_.size()) {
        return Status::SyntaxError("unterminated string literal");
      }
      if (input_[pos_] == '\'') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
          s += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      s += input_[pos_++];
    }
    t.type = TokenType::kStringLiteral;
    t.text = std::move(s);
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && pos_ + 1 < input_.size() &&
       std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E' ||
            ((input_[pos_] == '+' || input_[pos_] == '-') && pos_ > start &&
             (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
      if (input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E') {
        is_double = true;
      }
      ++pos_;
    }
    std::string_view num = input_.substr(start, pos_ - start);
    if (is_double) {
      t.type = TokenType::kDoubleLiteral;
      t.double_value = std::strtod(std::string(num).c_str(), nullptr);
    } else {
      t.type = TokenType::kIntLiteral;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(),
                                     t.int_value);
      if (ec != std::errc()) {
        return Status::SyntaxError("bad integer literal: " + std::string(num));
      }
    }
    t.text = std::string(num);
    return t;
  }

  if (c == '?') {
    ++pos_;
    t.type = TokenType::kParam;
    t.text = "?";
    return t;
  }

  // Multi-char operators first.
  static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||"};
  if (pos_ + 1 < input_.size()) {
    std::string two(input_.substr(pos_, 2));
    for (const char* op : kTwoChar) {
      if (two == op) {
        pos_ += 2;
        t.type = TokenType::kOperator;
        t.text = two;
        return t;
      }
    }
  }
  static const std::string kSingle = "+-*/%(),.;=<>";
  if (kSingle.find(c) != std::string::npos) {
    ++pos_;
    t.type = TokenType::kOperator;
    t.text = std::string(1, c);
    return t;
  }

  return Status::SyntaxError(
      StrFormat("unexpected character '%c' at position %zu", c, pos_));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    SPHERE_ASSIGN_OR_RETURN(Token t, NextToken());
    bool eof = t.type == TokenType::kEof;
    tokens.push_back(std::move(t));
    if (eof) break;
  }
  return tokens;
}

}  // namespace sphere::sql
