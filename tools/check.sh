#!/usr/bin/env bash
# Single entry point for the correctness tooling gate.
#
# Runs, in order:
#   1. tools/lint.py                          (project lint)
#   2. plain build + ctest                    (tier-1)
#   3. clang -Wthread-safety -Werror build    (skipped if clang++ missing)
#   4. clang-tidy over src/                   (skipped if clang-tidy missing)
#   5. ctest under ASan, UBSan, TSan          (SPHERE_SANITIZE matrix)
#
# Usage: tools/check.sh [--fast]
#   --fast   lint + plain build/test only (skip sanitizer matrix)
#
# Each stage builds into its own tree under build-check/ so repeated runs are
# incremental. Exits non-zero on the first failing stage.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

failures=0
skipped=()

note()  { printf '\n==== %s ====\n' "$*"; }
fail()  { printf 'FAILED: %s\n' "$*" >&2; failures=$((failures + 1)); }

run_ctest_tree() {
  # $1 = build dir, $2.. = extra cmake args
  local dir="$1"; shift
  cmake -S "$ROOT" -B "$dir" "$@" > "$dir-configure.log" 2>&1 \
    || { fail "configure $dir (see $dir-configure.log)"; return 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir-build.log" 2>&1 \
    || { fail "build $dir (see $dir-build.log)"; return 1; }
  (cd "$dir" && ctest --output-on-failure -j "$JOBS") > "$dir-ctest.log" 2>&1 \
    || { fail "ctest $dir (see $dir-ctest.log)"; return 1; }
  echo "OK: $dir"
}

mkdir -p "$ROOT/build-check"

note "1/5 project lint"
python3 "$ROOT/tools/lint.py" || fail "tools/lint.py"

note "2/5 tier-1 build + tests"
run_ctest_tree "$ROOT/build-check/plain"

if command -v clang++ >/dev/null 2>&1; then
  note "3/5 clang -Wthread-safety -Werror"
  run_ctest_tree "$ROOT/build-check/thread-safety" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety"
else
  note "3/5 clang -Wthread-safety (skipped: clang++ not installed)"
  skipped+=("thread-safety")
fi

if command -v clang-tidy >/dev/null 2>&1; then
  note "4/5 clang-tidy"
  find "$ROOT/src" -name '*.cc' -print0 \
    | xargs -0 -P "$JOBS" -n 1 clang-tidy -p "$ROOT/build-check/plain" \
    || fail "clang-tidy"
  # Header-only templates get no TU of their own; tidy them standalone so the
  # template bodies are analyzed even where no src/*.cc instantiates a path.
  for hdr in src/common/lru_cache.h; do
    clang-tidy "$ROOT/$hdr" -- -std=c++20 -I"$ROOT/src" -I"$ROOT" \
      || fail "clang-tidy $hdr"
  done
else
  note "4/5 clang-tidy (skipped: clang-tidy not installed)"
  skipped+=("clang-tidy")
fi

if [ "$FAST" -eq 1 ]; then
  note "5/5 sanitizer matrix (skipped: --fast)"
  skipped+=("sanitizers")
else
  for san in address undefined thread; do
    note "5/5 sanitizer: $san"
    run_ctest_tree "$ROOT/build-check/$san" -DSPHERE_SANITIZE="$san"
  done
fi

note "summary"
[ "${#skipped[@]}" -gt 0 ] && echo "skipped: ${skipped[*]}"
if [ "$failures" -gt 0 ]; then
  echo "check.sh: $failures stage(s) FAILED"
  exit 1
fi
echo "check.sh: all stages passed"
