#!/usr/bin/env bash
# Single entry point for the correctness tooling gate.
#
# Runs, in order:
#   1. tools/lint.py + tools/analyze.py       (project lint + lock analyzer)
#   2. plain build + ctest                    (tier-1)
#   3. bench_micro smoke                      (one short pass, JSON discarded)
#   4. clang -Wthread-safety -Werror build    (skipped if clang++ missing)
#   5. clang-tidy over src/                   (skipped if clang-tidy missing)
#   6. ctest under SPHERE_DEADLOCK=ON         (runtime lockdep; any rank or
#      lock-order violation aborts the offending test)
#   7. ctest under ASan, UBSan, TSan          (SPHERE_SANITIZE matrix)
#
# Usage: tools/check.sh [--fast]
#   --fast   lint + plain build/test only (skip lockdep + sanitizer matrix)
#
# Each stage builds into its own tree under build-check/ so repeated runs are
# incremental. Exits non-zero on the first failing stage.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

failures=0
skipped=()

note()  { printf '\n==== %s ====\n' "$*"; }
fail()  { printf 'FAILED: %s\n' "$*" >&2; failures=$((failures + 1)); }

run_ctest_tree() {
  # $1 = build dir, $2.. = extra cmake args
  local dir="$1"; shift
  cmake -S "$ROOT" -B "$dir" "$@" > "$dir-configure.log" 2>&1 \
    || { fail "configure $dir (see $dir-configure.log)"; return 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir-build.log" 2>&1 \
    || { fail "build $dir (see $dir-build.log)"; return 1; }
  (cd "$dir" && ctest --output-on-failure -j "$JOBS") > "$dir-ctest.log" 2>&1 \
    || { fail "ctest $dir (see $dir-ctest.log)"; return 1; }
  echo "OK: $dir"
}

mkdir -p "$ROOT/build-check"

note "1/7 project lint + analyzer"
python3 "$ROOT/tools/lint.py" || fail "tools/lint.py"
python3 "$ROOT/tools/analyze.py" || fail "tools/analyze.py"

note "2/7 tier-1 build + tests"
run_ctest_tree "$ROOT/build-check/plain"

note "3/7 bench_micro smoke"
# One abbreviated pass over every benchmark so a bench that crashes or aborts
# (e.g. a pipeline regression tripping its result check) fails the gate. The
# JSON goes into build-check/ so the committed BENCH_micro.json is untouched;
# bench_check.py then diffs the two and fails if any committed ablation has
# regressed by more than 2x in the current tree.
if [ -x "$ROOT/build-check/plain/bench/bench_micro" ]; then
  "$ROOT/build-check/plain/bench/bench_micro" \
    --benchmark_min_time=0.01 \
    --benchmark_out="$ROOT/build-check/BENCH_micro.smoke.json" \
    > "$ROOT/build-check/bench-smoke.log" 2>&1 \
    || fail "bench_micro smoke (see build-check/bench-smoke.log)"
  python3 "$ROOT/tools/bench_check.py" "$ROOT/BENCH_micro.json" \
    "$ROOT/build-check/BENCH_micro.smoke.json" \
    || fail "bench_check.py: committed BENCH_micro.json regressed >2x"
else
  note "3/7 bench_micro smoke (skipped: binary not built)"
  skipped+=("bench-smoke")
fi

if command -v clang++ >/dev/null 2>&1; then
  note "4/7 clang -Wthread-safety -Werror"
  run_ctest_tree "$ROOT/build-check/thread-safety" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety"
else
  note "4/7 clang -Wthread-safety (skipped: clang++ not installed)"
  skipped+=("thread-safety")
fi

if command -v clang-tidy >/dev/null 2>&1; then
  note "5/7 clang-tidy"
  find "$ROOT/src" -name '*.cc' -print0 \
    | xargs -0 -P "$JOBS" -n 1 clang-tidy -p "$ROOT/build-check/plain" \
    || fail "clang-tidy"
  # Header-only templates get no TU of their own; tidy them standalone so the
  # template bodies are analyzed even where no src/*.cc instantiates a path.
  for hdr in src/common/lru_cache.h \
             src/core/param_slice.h \
             src/engine/scan_cursor.h \
             src/engine/topk.h \
             src/engine/row_dedup.h; do
    clang-tidy "$ROOT/$hdr" -- -std=c++20 -I"$ROOT/src" -I"$ROOT" \
      || fail "clang-tidy $hdr"
  done
else
  note "5/7 clang-tidy (skipped: clang-tidy not installed)"
  skipped+=("clang-tidy")
fi

if [ "$FAST" -eq 1 ]; then
  note "6/7 lockdep (skipped: --fast)"
  skipped+=("lockdep")
else
  # The default violation handler aborts, so a rank inversion or lock-order
  # cycle anywhere in the suite turns its test red here.
  note "6/7 lockdep (SPHERE_DEADLOCK=ON)"
  run_ctest_tree "$ROOT/build-check/lockdep" -DSPHERE_DEADLOCK=ON
fi

if [ "$FAST" -eq 1 ]; then
  note "7/7 sanitizer matrix (skipped: --fast)"
  skipped+=("sanitizers")
else
  for san in address undefined thread; do
    note "7/7 sanitizer: $san"
    run_ctest_tree "$ROOT/build-check/$san" -DSPHERE_SANITIZE="$san"
  done
fi

note "summary"
[ "${#skipped[@]}" -gt 0 ] && echo "skipped: ${skipped[*]}"
if [ "$failures" -gt 0 ]; then
  echo "check.sh: $failures stage(s) FAILED"
  exit 1
fi
echo "check.sh: all stages passed"
