#!/usr/bin/env python3
"""Project lint for the sphere codebase.

Checks enforced (beyond what the compiler sees):

  1. discarded-status:   a bare statement calling a function that returns
                         Status or Result<T> discards the error. Callers must
                         propagate, branch, or visibly discard via `(void)...`.
                         (Backstop for [[nodiscard]] so the rule also holds in
                         TUs compiled without warnings, e.g. generated code.)
  2. raw-mutex:          `std::mutex` / `std::shared_mutex` /
                         `std::condition_variable` members outside
                         src/common/mutex.h. Use sphere::Mutex / SharedMutex /
                         CondVar so clang thread-safety analysis sees them.
  2b. raw-guard:         `std::lock_guard` / `std::unique_lock` /
                         `std::scoped_lock` / `std::atomic_flag`-as-spinlock
                         outside src/common/. These bypass the annotated RAII
                         types (and the SPHERE_DEADLOCK lockdep hooks), so
                         locking through them is invisible to every checker.
  3. include-guard:      header guards must be SPHERE_<PATH>_H_ derived from
                         the repo-relative path (e.g. src/core/route.h ->
                         SPHERE_CORE_ROUTE_H_; tests keep their tree prefix).
  4. relative-include:   no `#include "../foo.h"`; internal headers are
                         included by their path relative to src/ (or tests/).
  5. raw-alloc:          raw `new` expressions / malloc-family calls in the
                         hot-path layers (src/core, src/engine). Statement-
                         scoped allocations go through the arena (ArenaManaged
                         / ArenaVector, common/arena.h); row storage through
                         engine::RowStore (engine/row_batch.h); ownership
                         through make_unique/make_shared. Suppress a
                         legitimate site with `lint-exempt(raw-alloc): reason`
                         on the line or the one above.
  6. raw-clock:          direct `std::chrono::*_clock::now()` in the kernel
                         layers (src/core, src/engine). Timestamps there feed
                         trace spans and stage-latency histograms and must go
                         through NowMicros()/NowNanos() (common/clock.h) so
                         they share one epoch and stay mockable. Suppress with
                         `lint-exempt(raw-clock): reason`.

Usage:  tools/lint.py [--root DIR] [files...]
Exits non-zero if any violation is found; prints file:line: rule: message.
"""

import argparse
import os
import re
import sys

LINT_DIRS = ("src", "tests", "bench", "examples")
CXX_EXT = (".h", ".cc")

# Files allowed to hold raw synchronisation primitives: the annotated wrapper
# itself and the annotation macros (which mention the types in comments only,
# but keep it exempt for robustness).
RAW_MUTEX_EXEMPT = {
    os.path.join("src", "common", "mutex.h"),
    os.path.join("src", "common", "thread_annotations.h"),
    # The lockdep checker runs underneath sphere::Mutex and must not recurse
    # into the locks it is checking.
    os.path.join("src", "common", "lockdep.cc"),
}

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?)\b")

# RAII guards / spinlock idioms over raw primitives. Allowed inside
# src/common/ (the wrapper layer itself needs them); everywhere else they
# dodge sphere::MutexLock and with it the thread-safety annotations and the
# lockdep held-stack.
RAW_GUARD_RE = re.compile(
    r"\bstd::(lock_guard|unique_lock|scoped_lock|atomic_flag)\b")

RELATIVE_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"\.\.?/')

# Hot-path layers where per-statement heap traffic is disciplined (arena /
# row pool); a stray `new` or malloc here is an allocation-regression vector
# the benchmarks will not always catch.
RAW_ALLOC_DIRS = (
    os.path.join("src", "core") + os.sep,
    os.path.join("src", "engine") + os.sep,
)
# A new-expression (`new T`, `x = new T[...]`) — not `operator new`, not the
# word in comments/strings (already stripped). malloc family included.
RAW_ALLOC_RE = re.compile(
    r"(?<!operator )\bnew\s+[A-Za-z_:(]|"
    r"\b(?:malloc|calloc|realloc|aligned_alloc|posix_memalign|strdup)\s*\(")
RAW_ALLOC_EXEMPT_RE = re.compile(r"lint-exempt\(raw-alloc\)\s*:\s*\S")

# Kernel layers where wall-clock reads must go through common/clock.h: the
# observability layer correlates span start/duration against stage histograms
# recorded elsewhere, which only works on a single clock source.
RAW_CLOCK_DIRS = (
    os.path.join("src", "core") + os.sep,
    os.path.join("src", "engine") + os.sep,
)
RAW_CLOCK_RE = re.compile(
    r"\bstd::chrono::(steady_clock|system_clock|high_resolution_clock)"
    r"\s*::\s*now\s*\(")
RAW_CLOCK_EXEMPT_RE = re.compile(r"lint-exempt\(raw-clock\)\s*:\s*\S")

GUARD_IFNDEF_RE = re.compile(r"^#ifndef\s+([A-Za-z0-9_]+)\s*$")

# Calls whose discarded result is an error. The name-set is built by scanning
# declarations, but seeded with the core vocabulary so the check works even on
# a partial file list.
SEED_STATUS_FNS = {
    "Commit", "Rollback", "Prepare", "CommitPrepared", "RollbackPrepared",
    "RollbackLocked", "CreateTable", "DropTable", "Insert", "Update", "Delete",
    "Execute", "ExecuteUnit", "Apply", "Start", "Stop", "Register",
}

DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+)*"
    r"(?:::)?(?:\w+::)*(?:Status|Result<[^;=]*>)\s+"
    r"(?:\w+::)*(\w+)\s*\(")

# Declarations with any other return type; a name that appears with both a
# Status/Result return and a non-Status return is ambiguous and is not
# flagged (the compiler's [[nodiscard]] still covers the Status overloads).
OTHER_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"(void|bool|auto|int|int64_t|uint64_t|size_t|double|float|char|"
    r"std::\w+|[A-Z]\w*)(?:<[^;={}]*>)?[&*]?\s+"
    r"(?:\w+::)*(\w+)\s*\(")

# A bare call statement: `Name(...)` / `expr->Name(...)` / `expr.Name(...)`
# forming the whole statement. Applied to reconstructed (joined) statements,
# so wrapped call arguments cannot masquerade as statements.
BARE_CALL_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\(.*\)$", re.S)

KEYWORDS = {
    "if", "for", "while", "switch", "return", "assert", "sizeof", "catch",
    "co_return", "co_await", "delete", "new", "throw", "static_assert",
}


def repo_files(root, explicit):
    if explicit:
        for f in explicit:
            yield os.path.relpath(os.path.abspath(f), root)
        return
    for d in LINT_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for n in sorted(names):
                if n.endswith(CXX_EXT):
                    yield os.path.relpath(os.path.join(dirpath, n), root)


def strip_comments_keep_lines(text):
    """Blanks out /*...*/ and //... comments and string/char literals,
    preserving line structure so reported line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # in string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
            out.append(c if c in (state, "\n", '"', "'") else " ")
        i += 1
    return "".join(out)


def expected_guard(rel):
    base = rel
    if base.startswith("src" + os.sep):
        base = base[len("src" + os.sep):]
    stem = base[:-2] if base.endswith(".h") else base
    token = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return "SPHERE_%s_H_" % token


DANGLING_RE = re.compile(r"[>\w&*,]\s*$")


def logical_lines(text):
    """Yields declaration-joined lines: a physical line continues onto the
    next while its parens are unbalanced (wrapped parameter list) or it ends
    in a dangling type head (`static Result<...>` with the function name on
    the following line). Without this, DECL_RE only sees single-line
    declarations and wrapped Status/Result functions silently drop out of
    the discarded-status name set."""
    buf = ""
    for line in text.split("\n"):
        s = line.strip()
        if not buf and s.startswith("#"):
            # Preprocessor lines are complete on their own (`#include <x>`
            # ends in '>' but is not a dangling template head).
            yield s
            continue
        buf = (buf + " " + s) if buf else s
        if not buf:
            continue
        if buf.count("(") > buf.count(")"):
            continue  # inside a wrapped argument list
        if "(" not in buf and DANGLING_RE.search(buf):
            continue  # dangling return type / template head
        yield buf
        buf = ""
    if buf:
        yield buf


def build_status_name_set(root, rels):
    names = set(SEED_STATUS_FNS)
    ambiguous = set()
    for rel in rels:
        try:
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                text = strip_comments_keep_lines(f.read())
        except OSError:
            continue
        for line in logical_lines(text):
            m = DECL_RE.match(line)
            if m:
                names.add(m.group(1))
                continue
            m = OTHER_DECL_RE.match(line)
            if m and m.group(1) not in ("Status", "Result"):
                ambiguous.add(m.group(2))
    names -= ambiguous
    # Names too generic to flag reliably.
    for generic in ("OK", "value", "status"):
        names.discard(generic)
    return names


def iter_statements(text):
    """Yields (line_number, statement_text) for each `;`-terminated statement
    at paren/bracket depth zero, joining wrapped lines. Braces outside parens
    are statement boundaries (blocks, function bodies) and reset the buffer;
    braces inside parens (initializer-list arguments) are kept."""
    buf = []
    depth = 0  # () and [] nesting only
    line = 1
    start = 1
    for c in text:
        if c == "\n":
            line += 1
        if c in "([":
            depth += 1
            buf.append(c)
        elif c in ")]":
            depth = max(0, depth - 1)
            buf.append(c)
        elif c in "{}" and depth == 0:
            buf = []
            start = line
        elif c == ";" and depth == 0:
            stmt = "".join(buf).strip()
            if stmt:
                yield start, " ".join(stmt.split())
            buf = []
            start = line
        else:
            if not buf:
                if c.isspace():
                    continue
                start = line
            buf.append(c)


def check_file(root, rel, status_fns, errors):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        errors.append((rel, 0, "io", str(e)))
        return
    text = strip_comments_keep_lines(raw)
    lines = text.split("\n")
    raw_lines = raw.split("\n")

    in_common_mutex = rel in RAW_MUTEX_EXEMPT
    in_common = rel.startswith(os.path.join("src", "common") + os.sep)
    in_hot_path = rel.startswith(RAW_ALLOC_DIRS)
    in_kernel = rel.startswith(RAW_CLOCK_DIRS)
    for i, line in enumerate(lines, 1):
        if not in_common_mutex and RAW_MUTEX_RE.search(line):
            errors.append((rel, i, "raw-mutex",
                           "raw std:: synchronisation primitive; use "
                           "sphere::Mutex/SharedMutex/CondVar from "
                           "common/mutex.h"))
        if not in_common and RAW_GUARD_RE.search(line):
            errors.append((rel, i, "raw-guard",
                           "raw std:: lock guard / spinlock; use "
                           "sphere::MutexLock/ReaderLock/WriterLock from "
                           "common/mutex.h"))
        if RELATIVE_INCLUDE_RE.match(raw_lines[i - 1]):
            errors.append((rel, i, "relative-include",
                           "relative #include; use the src/-relative path"))
        if in_hot_path and RAW_ALLOC_RE.search(line):
            exempt = RAW_ALLOC_EXEMPT_RE.search(raw_lines[i - 1]) or (
                i >= 2 and RAW_ALLOC_EXEMPT_RE.search(raw_lines[i - 2]))
            if not exempt:
                errors.append((rel, i, "raw-alloc",
                               "raw allocation in a hot-path layer; use the "
                               "statement arena (common/arena.h), the row "
                               "pool (engine/row_batch.h) or make_unique — "
                               "or mark lint-exempt(raw-alloc): reason"))
        if in_kernel and RAW_CLOCK_RE.search(line):
            exempt = RAW_CLOCK_EXEMPT_RE.search(raw_lines[i - 1]) or (
                i >= 2 and RAW_CLOCK_EXEMPT_RE.search(raw_lines[i - 2]))
            if not exempt:
                errors.append((rel, i, "raw-clock",
                               "raw std::chrono clock read in a kernel layer; "
                               "use NowMicros()/NowNanos() (common/clock.h) "
                               "so traces and histograms share one epoch — "
                               "or mark lint-exempt(raw-clock): reason"))
    for start_line, stmt in iter_statements(text):
        m = BARE_CALL_RE.match(stmt)
        if not m:
            continue
        name = m.group(1)
        if name in status_fns and name not in KEYWORDS:
            errors.append(
                (rel, start_line, "discarded-status",
                 "result of %s() (Status/Result) is discarded; "
                 "handle it or cast to (void)" % name))

    if rel.endswith(".h"):
        want = expected_guard(rel)
        got = None
        for line in lines:
            m = GUARD_IFNDEF_RE.match(line)
            if m:
                got = m.group(1)
                break
        if got is None:
            errors.append((rel, 1, "include-guard",
                           "missing include guard (expected %s)" % want))
        elif got != want:
            errors.append((rel, 1, "include-guard",
                           "guard is %s, expected %s" % (got, want)))
        else:
            body = "\n".join(raw_lines)
            if ("#define %s" % want) not in body:
                errors.append((rel, 1, "include-guard",
                               "guard %s never #define'd" % want))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("files", nargs="*", help="specific files to lint")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    rels = list(repo_files(root, args.files))
    headers = [r for r in rels if r.endswith(".h")]
    sources = [r for r in rels if r.endswith(".cc")]
    status_fns = build_status_name_set(root, headers + sources)

    errors = []
    for rel in rels:
        check_file(root, rel, status_fns, errors)

    for rel, line, rule, msg in sorted(errors):
        print("%s:%d: %s: %s" % (rel, line, rule, msg))
    if errors:
        print("lint: %d violation(s)" % len(errors), file=sys.stderr)
        return 1
    print("lint: OK (%d files)" % len(rels))
    return 0


if __name__ == "__main__":
    sys.exit(main())
