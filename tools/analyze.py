#!/usr/bin/env python3
"""AST-backed project analyzer for the sphere codebase.

Grown out of tools/lint.py (whose textual checks it complements, not
replaces): lint.py enforces file-shape rules; analyze.py enforces the
*concurrency discipline* rules that need a model of classes, lock ranks and
scopes. It uses libclang for the class/member model when the python bindings
and a libclang shared object are installed, and falls back to a tokenizer
parser otherwise — the rules and their output are identical either way, the
AST path is just harder to fool with exotic formatting.

Rules (all scoped to src/ — tests and benches may legitimately break them
to *exercise* the machinery, e.g. the lockdep tests spawn raw threads):

  guarded-by       Every mutable data member of a lock-owning class (one
                   with a sphere::Mutex / SharedMutex member) must be
                   SPHERE_GUARDED_BY / SPHERE_PT_GUARDED_BY annotated,
                   std::atomic, const/constexpr, itself a synchronisation
                   primitive, or carry an explicit exemption marker.
  blocking         No blocking call — CondVar Wait/WaitFor, Session/JDBC
                   ExecuteSQL, connection-pool Acquire/AcquireMany,
                   ThreadPool/Latch Wait — while a storage-rank lock
                   (LockRank::kStorage) is held via a RAII guard. Blocking
                   under a table latch stalls every reader of that table.
  borrowed-row     A `const Row*` borrowed from TableScanCursor::Next() must
                   not escape the latch scope: no returning it, no storing it
                   into a member, no pushing the raw pointer into a
                   container. (Copy the row; the pointer dies with the
                   ReaderLock.)
  raw-thread       No raw std::thread / std::jthread outside
                   src/common/thread_pool.* — work goes through the pool so
                   shutdown, sizing and wait discipline stay in one place.
  arena-escape     A function that both produces statement-scoped trees
                   (Parse/ParseShared/Clone/Rewrite) and publishes into a
                   cache (.Put(...), .StoreRouted(...), stmt_cache_
                   emplace/insert) must contain an ArenaSuspend: with a
                   statement arena current, the produced nodes die at scope
                   exit, so publishing them is a use-after-reset. The
                   suspend routes cache-destined allocations to the heap.

Exemption marker: a comment `analyze-exempt(<rule>): <reason>` on the
flagged line or the line directly above suppresses that rule there. The
reason is mandatory by convention — the marker is grep-able review bait,
not an off switch.

Usage:  tools/analyze.py [--root DIR] [--no-libclang] [files...]
Exits non-zero if any violation is found; prints file:line: rule: message.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402  (shared tokenizer infrastructure)

EXEMPT_RE = re.compile(r"analyze-exempt\((?P<rule>[\w-]+)\)\s*:\s*\S")

SYNC_PRIMITIVES = ("Mutex", "SharedMutex", "CondVar", "ThreadPool", "Latch")

GUARD_DECL_RE = re.compile(
    r"\b(MutexLock|ReaderLock|WriterLock)\s+\w+\s*[({](?P<expr>[^;]*?)[)}]\s*;")

# Lock member declarations carrying a rank, e.g.
#   mutable SharedMutex latch_{LockRank::kStorage, "storage/table.latch"};
RANKED_LOCK_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(?P<member>\w+)\s*\{\s*"
    r"LockRank::(?P<rank>k\w+)\s*,")

# Calls that can block the calling thread. \b keeps TryAcquire() etc. out.
BLOCKING_RE = re.compile(
    r"\b(Wait|WaitFor|WaitUntil|ExecuteSQL|Acquire|AcquireMany)\s*\(")

CURSOR_DECL_RE = re.compile(r"\bTableScanCursor\s+(?P<var>\w+)\s*[({]")
BORROW_RE = re.compile(
    r"\b(?:const\s+)?(?:(?:storage::)?Row\s*\*|auto\s*\*?)\s*(?P<var>\w+)"
    r"\s*=\s*(?P<cursor>\w+)(?:\.|->)Next\s*\(")

THREAD_RE = re.compile(r"\bstd::j?thread\b")

# arena-escape: producers of (possibly) arena-allocated trees, publishes into
# long-lived caches, and the suspend that makes the combination safe.
ARENA_PRODUCER_RE = re.compile(r"\b(?:Parse|ParseShared|Clone|Rewrite)\s*\(")
ARENA_PUBLISH_RE = re.compile(
    r"(?:\.|->)\s*(?:Put|StoreRouted)\s*\(|"
    r"stmt_cache_\s*(?:\.|->)\s*(?:emplace|insert|try_emplace)\s*\(")
ARENA_SUSPEND_RE = re.compile(r"\bArenaSuspend\b")
RAW_THREAD_EXEMPT_FILES = (
    os.path.join("src", "common", "thread_pool.h"),
    os.path.join("src", "common", "thread_pool.cc"),
)

CLASS_HEAD_RE = re.compile(
    r"^\s*(?:template\s*<[^<>]*>\s*)?(class|struct)\s+(?:SPHERE_\w+\s*(?:\([^()]*\))?\s*)?"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?\{")

MEMBER_SKIP_RE = re.compile(
    r"^\s*(public|private|protected|using|typedef|friend|static|constexpr|"
    r"enum|class|struct|template|explicit|operator)\b")

SPHERE_MACRO_RE = re.compile(r"SPHERE_\w+\s*(?:\([^()]*\))?")


class Finding:
    def __init__(self, rel, line, rule, msg):
        self.rel, self.line, self.rule, self.msg = rel, line, rule, msg

    def key(self):
        return (self.rel, self.line, self.rule, self.msg)


def exempt_lines(raw_text):
    """Maps rule name -> set of covered line numbers. A marker covers its
    own line and the first following non-comment line (so a marker anywhere
    in the comment block above a declaration reaches the declaration). A
    line may carry several markers for different rules."""
    out = {}
    lines = raw_text.split("\n")
    for i, line in enumerate(lines, 1):
        for m in EXEMPT_RE.finditer(line):
            covered = {i}
            j = i  # 0-based index of the line after the marker's
            while j < len(lines) and lines[j].strip().startswith("//"):
                j += 1
            covered.add(j + 1)
            out.setdefault(m.group("rule"), set()).update(covered)
    return out


def is_exempt(exempts, rule, line):
    return line in exempts.get(rule, set())


# ---------------------------------------------------------------------------
# Class/member model. Two producers (libclang, tokenizer), one shape:
#   [(class_name, class_line, has_lock, [(member_name, line, covered), ...])]
# `covered` is True when the member satisfies the guarded-by rule by itself
# (annotated / atomic / const / sync primitive); exemption markers are
# applied by the caller so both producers stay marker-agnostic.
# ---------------------------------------------------------------------------


# A nested '{' at class-body depth opens either a function body (discard the
# signature on return) or a member's brace initializer (keep the declaration
# head so `Mutex mu_{LockRank::..., "..."};` still classifies). A signature
# ends in ')' or a trailing qualifier; an initializer follows the member name
# or '=' directly.
FN_BODY_BEFORE_BRACE_RE = re.compile(
    r"(\)|\boverride\b|\bconst\b|\bnoexcept\b|\bfinal\b|\btry\b)\s*$")


def classes_from_tokens(text):
    """Tokenizer class model: walks brace depth, collects `;`-terminated
    statements at each class's immediate body depth, classifies them.
    Limitation (accepted, matches house style): a class head must have its
    name and opening '{' on one line."""
    classes = []       # finished (name, line, has_lock, members)
    stack = []         # dicts: name, line, body_depth, members, has_lock, note
    depth = 0
    buf, buf_line = "", 0
    pending = None     # class head seen on this line, waiting for its '{'

    def at_body():
        return bool(stack) and depth == stack[-1]["body_depth"]

    def classify(stmt, line_no):
        cls = stack[-1]
        s = " ".join(stmt.split())
        # `private: Mutex mu_;` is one ';'-terminated chunk — peel the label.
        s = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", s)
        if not s or MEMBER_SKIP_RE.match(s):
            return
        if re.search(r"\boperator\b", s):
            return  # operator declaration (`X& operator=(...) = delete;`)
        if re.search(r"\b(?:%s)\b" % "|".join(SYNC_PRIMITIVES), s):
            if re.search(r"\b(?:Mutex|SharedMutex)\s+\w+", s):
                cls["has_lock"] = True
            cls["members"].append((member_name(s), line_no, True))
            return
        annotated = ("SPHERE_GUARDED_BY" in s or "SPHERE_PT_GUARDED_BY" in s)
        bare = SPHERE_MACRO_RE.sub(" ", s)
        bare = re.sub(r"=[^;]*$", "", bare)  # default initializer
        bare = bare.strip().rstrip(";").strip()
        if not bare or "(" in bare or ")" in bare:
            return  # function declaration (or unparseable) — not a member
        m = re.match(r"(?P<type>.*?)(?P<name>\w+)\s*(?:\[[^\]]*\])?$", bare)
        if not m or not m.group("type").strip():
            return
        covered = (annotated
                   or "std::atomic" in m.group("type")
                   or re.search(r"\bconst\b", m.group("type")) is not None)
        cls["members"].append((m.group("name"), line_no, covered))

    for line_no, line in enumerate(text.split("\n"), 1):
        head = CLASS_HEAD_RE.match(line)
        if head:
            pending = (head.group("name"), line_no)
        for c in line:
            if c == "{":
                if pending:
                    depth += 1
                    stack.append({"name": pending[0], "line": pending[1],
                                  "body_depth": depth, "members": [],
                                  "has_lock": False, "note": None})
                    pending = None
                    buf, buf_line = "", 0
                else:
                    if at_body():
                        stack[-1]["note"] = (
                            "fn" if FN_BODY_BEFORE_BRACE_RE.search(buf)
                            else "init")
                    depth += 1
            elif c == "}":
                if at_body():
                    cls = stack.pop()
                    classes.append((cls["name"], cls["line"],
                                    cls["has_lock"], cls["members"]))
                    buf, buf_line = "", 0
                depth -= 1
                if at_body() and stack[-1]["note"] == "fn":
                    buf, buf_line = "", 0
                    stack[-1]["note"] = None
            elif c == ";":
                if at_body():
                    classify(buf, buf_line or line_no)
                    buf, buf_line = "", 0
            else:
                if at_body():
                    if not buf and not c.isspace():
                        buf_line = line_no
                    buf += c
        pending = None  # heads never wrap past their line
    return classes


def member_name(stmt):
    bare = SPHERE_MACRO_RE.sub(" ", stmt)
    bare = re.sub(r"[={][^;]*$", "", bare).strip().rstrip(";").strip()
    m = re.search(r"(\w+)\s*$", bare)
    return m.group(1) if m else stmt.strip()


def classes_from_libclang(index, path, root):
    """AST class model via libclang. Returns None when the TU fails to parse
    (caller falls back to the tokenizer for that file)."""
    from clang import cindex
    args = ["-std=c++20", "-I" + os.path.join(root, "src"), "-I" + root,
            "-DSPHERE_DEADLOCK=0"]
    try:
        tu = index.parse(path, args=args)
    except cindex.TranslationUnitLoadError:
        return None
    classes = []

    def visit(cursor):
        if cursor.kind in (cindex.CursorKind.CLASS_DECL,
                           cindex.CursorKind.STRUCT_DECL):
            if not cursor.is_definition():
                return
            if cursor.location.file and cursor.location.file.name != path:
                return
            members, has_lock = [], False
            for ch in cursor.get_children():
                visit(ch)  # nested classes
                if ch.kind != cindex.CursorKind.FIELD_DECL:
                    continue
                t = ch.type.spelling
                if any(p in t for p in SYNC_PRIMITIVES):
                    if "Mutex" in t:
                        has_lock = True
                    members.append((ch.spelling, ch.location.line, True))
                    continue
                guarded = any("guarded_by" in (a.spelling or "")
                              for a in ch.get_children()
                              if a.kind.is_attribute())
                covered = (guarded or "std::atomic" in t
                           or ch.type.is_const_qualified())
                members.append((ch.spelling, ch.location.line, covered))
            classes.append((cursor.spelling, cursor.location.line,
                            has_lock, members))
            return
        for ch in cursor.get_children():
            visit(ch)

    visit(tu.cursor)
    return classes


def load_libclang(disabled):
    if disabled:
        return None
    try:
        from clang import cindex
        index = cindex.Index.create()
        return index
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_guarded_by(rel, classes, exempts, findings):
    for cls_name, _cls_line, has_lock, members in classes:
        if not has_lock:
            continue
        for name, line, covered in members:
            if covered or is_exempt(exempts, "guarded-by", line):
                continue
            findings.append(Finding(
                rel, line, "guarded-by",
                "member '%s' of lock-owning class %s is neither "
                "SPHERE_GUARDED_BY-annotated, atomic, const, nor "
                "analyze-exempt(guarded-by)" % (name, cls_name)))


def storage_lock_names(root, rel, text):
    """Names of this file's kStorage-ranked lock members — declared here or
    in the same-stem header (the usual .cc/.h split)."""
    names = set()
    for src in (text, same_stem_header(root, rel)):
        if src is None:
            continue
        for m in RANKED_LOCK_RE.finditer(src):
            if m.group("rank") == "kStorage":
                names.add(m.group("member"))
    return names


def same_stem_header(root, rel):
    if not rel.endswith(".cc"):
        return None
    hdr = os.path.join(root, rel[:-3] + ".h")
    try:
        with open(hdr, encoding="utf-8") as f:
            return lint.strip_comments_keep_lines(f.read())
    except OSError:
        return None


def guard_is_storage(expr, storage_names):
    if re.search(r"\blatch\s*\(\s*\)", expr) or "latch_" in expr:
        return True  # Table::latch() is *the* storage-rank capability
    return any(re.search(r"\b%s\b" % re.escape(n), expr)
               for n in storage_names)


def check_blocking(rel, text, storage_names, exempts, findings):
    depth = 0
    guards = []  # depth at which a storage-rank guard was declared
    for line_no, line in enumerate(text.split("\n"), 1):
        m = GUARD_DECL_RE.search(line)
        entered = m is not None and guard_is_storage(m.group("expr"),
                                                     storage_names)
        if guards and BLOCKING_RE.search(line) and not entered:
            if not is_exempt(exempts, "blocking", line_no):
                call = BLOCKING_RE.search(line).group(1)
                findings.append(Finding(
                    rel, line_no, "blocking",
                    "%s() may block while a storage-rank (table/catalog) "
                    "lock is held (guard declared at line %d)"
                    % (call, guards[-1][1])))
        for c in line:
            if c == "{":
                depth += 1
            elif c == "}":
                while guards and guards[-1][0] >= depth:
                    guards.pop()
                depth -= 1
        if entered:
            guards.append((depth, line_no))
    return findings


def check_borrowed_row(rel, text, exempts, findings):
    cursors = set(m.group("var") for m in CURSOR_DECL_RE.finditer(text))
    lines = text.split("\n")
    borrowed = {}  # var -> (decl_line, decl_depth)
    depth = 0
    for line_no, line in enumerate(lines, 1):
        m = BORROW_RE.search(line)
        if m and (m.group("cursor") in cursors or not cursors):
            borrowed[m.group("var")] = (line_no, depth)
        for var, (decl_line, _d) in list(borrowed.items()):
            if line_no == decl_line:
                continue
            escape = None
            if re.search(r"\breturn\s+%s\s*;" % re.escape(var), line):
                escape = "returned"
            elif re.search(r"\b\w+_\s*=\s*%s\s*;" % re.escape(var), line):
                escape = "stored into a member"
            elif re.search(r"\.(?:push_back|emplace_back)\s*\(\s*%s\s*\)"
                           % re.escape(var), line):
                escape = "pushed (as a raw pointer) into a container"
            if escape and not is_exempt(exempts, "borrowed-row", line_no):
                findings.append(Finding(
                    rel, line_no, "borrowed-row",
                    "row pointer '%s' borrowed from TableScanCursor::Next() "
                    "(line %d) is %s — it dies with the table latch; copy "
                    "the row instead" % (var, decl_line, escape)))
        for c in line:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                for var, (_l, d) in list(borrowed.items()):
                    if d > depth:
                        del borrowed[var]
    return findings


def check_arena_escape(rel, text, exempts, findings):
    """Chunk the file on column-0 '}' lines (house style closes namespace-
    scope function bodies at column 0) and require ArenaSuspend in any chunk
    that both produces statement trees and publishes into a cache. Coarse by
    design: a class defined inline forms one chunk, which can only make the
    rule stricter, never blinder."""
    chunk, chunk_start = [], 1
    lines = text.split("\n")

    def flush(end_line):
        body = "\n".join(chunk)
        if (ARENA_PRODUCER_RE.search(body) and ARENA_PUBLISH_RE.search(body)
                and not ARENA_SUSPEND_RE.search(body)):
            publish_at = chunk_start
            for off, l in enumerate(chunk):
                if ARENA_PUBLISH_RE.search(l):
                    publish_at = chunk_start + off
                    break
            if not is_exempt(exempts, "arena-escape", publish_at):
                findings.append(Finding(
                    rel, publish_at, "arena-escape",
                    "this function parses/clones statement trees AND "
                    "publishes into a cache without an ArenaSuspend — under "
                    "an active statement arena the published nodes are "
                    "reclaimed at scope exit (use-after-reset); build the "
                    "cache-destined tree under ArenaSuspend, or mark "
                    "analyze-exempt(arena-escape) with the reason it cannot "
                    "run inside an arena scope"))
        del chunk[:]
        return end_line + 1

    for line_no, line in enumerate(lines, 1):
        chunk.append(line)
        if line.startswith("}"):
            chunk_start = flush(line_no)
    flush(len(lines))


def check_raw_thread(rel, text, exempts, findings):
    if rel in RAW_THREAD_EXEMPT_FILES:
        return
    for line_no, line in enumerate(text.split("\n"), 1):
        if THREAD_RE.search(line) and not is_exempt(
                exempts, "raw-thread", line_no):
            findings.append(Finding(
                rel, line_no, "raw-thread",
                "raw std::thread outside src/common/thread_pool; submit to "
                "the shared ThreadPool (or add analyze-exempt(raw-thread) "
                "with the reason this must be a dedicated thread)"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def analyze_file(root, rel, index, findings):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        findings.append(Finding(rel, 0, "io", str(e)))
        return
    exempts = exempt_lines(raw)
    text = lint.strip_comments_keep_lines(raw)

    classes = None
    if index is not None:
        classes = classes_from_libclang(index, path, root)
    if classes is None:
        classes = classes_from_tokens(text)

    check_guarded_by(rel, classes, exempts, findings)
    check_blocking(rel, text, storage_lock_names(root, rel, text),
                   exempts, findings)
    check_borrowed_row(rel, text, exempts, findings)
    check_arena_escape(rel, text, exempts, findings)
    check_raw_thread(rel, text, exempts, findings)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--no-libclang", action="store_true",
                    help="force the tokenizer fallback")
    ap.add_argument("files", nargs="*", help="specific files to analyze")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.files:
        rels = [os.path.relpath(os.path.abspath(f), root) for f in args.files]
    else:
        rels = [r for r in lint.repo_files(root, None)
                if r.startswith("src" + os.sep)]

    index = load_libclang(args.no_libclang)
    mode = "libclang" if index is not None else "tokenizer"

    findings = []
    for rel in rels:
        analyze_file(root, rel, index, findings)

    seen = set()
    ordered = []
    for f in sorted(findings, key=Finding.key):
        if f.key() not in seen:
            seen.add(f.key())
            ordered.append(f)
    for f in ordered:
        print("%s:%d: %s: %s" % (f.rel, f.line, f.rule, f.msg))
    if ordered:
        print("analyze: %d violation(s) [%s]" % (len(ordered), mode),
              file=sys.stderr)
        return 1
    print("analyze: OK (%d files, %s)" % (len(rels), mode))
    return 0


if __name__ == "__main__":
    sys.exit(main())
