#!/usr/bin/env python3
"""Guards committed benchmark results against silent regressions.

Compares the committed BENCH_micro.json (the numbers DESIGN.md cites) against
a fresh smoke run: if any benchmark's committed throughput is more than
FACTOR times the smoke run's, the current tree has regressed that ablation
and the gate fails. The wide default factor absorbs smoke-run noise
(--benchmark_min_time=0.01) and machine variance; a real fast-lane or
streaming regression is typically 2x-1000x, not 20%.

Usage: bench_check.py <committed.json> <smoke.json> [factor]
"""

import json
import sys


def ops_per_second(entry):
    """Throughput for one benchmark entry (items/sec, falling back to 1/t)."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}[entry.get("time_unit", "ns")]
    real = float(entry["real_time"])
    return scale / real if real > 0 else 0.0


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        out[b["name"]] = ops_per_second(b)
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    committed_path, smoke_path = argv[1], argv[2]
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    try:
        committed = load_benchmarks(committed_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_check: cannot read committed {committed_path}: {e}")
        print("bench_check: regenerate it by running bench_micro from the repo root")
        return 1
    try:
        smoke = load_benchmarks(smoke_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_check: cannot read smoke run {smoke_path}: {e}")
        return 1

    failures = []
    for name, committed_ops in sorted(committed.items()):
        if name not in smoke:
            # Renamed or removed benchmark: the committed file is stale but
            # the tree didn't regress. Surface it without failing.
            print(f"bench_check: note: '{name}' in committed results but not "
                  f"in smoke run (stale committed entry?)")
            continue
        smoke_ops = smoke[name]
        if smoke_ops <= 0 or committed_ops > factor * smoke_ops:
            failures.append((name, committed_ops, smoke_ops))

    for name, committed_ops, smoke_ops in failures:
        ratio = committed_ops / smoke_ops if smoke_ops > 0 else float("inf")
        print(f"bench_check: REGRESSION {name}: committed {committed_ops:.3g} "
              f"ops/s vs smoke {smoke_ops:.3g} ops/s ({ratio:.1f}x slower "
              f"than committed, limit {factor}x)")
    if failures:
        return 1
    print(f"bench_check: {len(committed)} committed benchmarks within "
          f"{factor}x of the smoke run")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
