#!/usr/bin/env python3
"""Guards committed benchmark results against silent regressions.

Compares the committed BENCH_micro.json (the numbers DESIGN.md cites) against
a fresh smoke run, on two axes:

  - throughput: if any benchmark's committed ops/sec is more than FACTOR
    times the smoke run's, the current tree has regressed that ablation and
    the gate fails. The wide default factor absorbs smoke-run noise
    (--benchmark_min_time=0.01) and machine variance; a real fast-lane or
    streaming regression is typically 2x-1000x, not 20%.
  - allocations: benchmarks that report an `allocs_per_query` counter are
    lower-is-better; if the smoke run allocates more than FACTOR times the
    committed count (plus a small absolute slack for counter noise), the
    memory-discipline layer has regressed and the gate fails.
  - observability overhead: within the committed baseline itself,
    BM_ObservabilityOverhead/1 (tracing on, default sampling) must stay
    within OBS_OVERHEAD_LIMIT of BM_ObservabilityOverhead/0 (knob off).
    This is deterministic — both numbers come from the same committed run on
    the same machine — so a chatty span or an always-on sampler cannot land
    behind smoke-run variance.

Build-type hygiene: the committed file must carry
`context.project_build_type == "release"` — a debug baseline would let real
regressions hide inside the debug slowdown, so anything else is refused.
A debug `library_build_type` (Debian ships google-benchmark's debug build)
only warns: the library's own overhead is identical in both files.

Usage: bench_check.py <committed.json> <smoke.json> [factor]
"""

import json
import sys

# Allocation counts below this are treated as equal: a pooled path that does
# 0.2 allocs/query vs a committed 0.05 is noise, not a leak.
ALLOC_SLACK = 4.0

# Observability gate: tracing at the default sampling interval may cost at
# most this fraction of the knob-off throughput (DESIGN.md §13).
OBS_OFF = "BM_ObservabilityOverhead/0"
OBS_ON = "BM_ObservabilityOverhead/1"
OBS_OVERHEAD_LIMIT = 0.05


def ops_per_second(entry):
    """Throughput for one benchmark entry (items/sec, falling back to 1/t)."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}[entry.get("time_unit", "ns")]
    real = float(entry["real_time"])
    return scale / real if real > 0 else 0.0


def load_file(path):
    with open(path) as f:
        data = json.load(f)
    ops, allocs = {}, {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        ops[b["name"]] = ops_per_second(b)
        if "allocs_per_query" in b:
            allocs[b["name"]] = float(b["allocs_per_query"])
    return data.get("context", {}), ops, allocs


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    committed_path, smoke_path = argv[1], argv[2]
    factor = float(argv[3]) if len(argv) > 3 else 2.0

    try:
        committed_ctx, committed, committed_allocs = load_file(committed_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_check: cannot read committed {committed_path}: {e}")
        print("bench_check: regenerate it by running bench_micro from the repo root")
        return 1
    try:
        _, smoke, smoke_allocs = load_file(smoke_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_check: cannot read smoke run {smoke_path}: {e}")
        return 1

    # Refuse a non-release committed baseline outright.
    build_type = committed_ctx.get("project_build_type")
    if build_type != "release":
        print(f"bench_check: REFUSED: committed {committed_path} has "
              f"project_build_type={build_type!r} (need \"release\")")
        print("bench_check: rebuild with -DCMAKE_BUILD_TYPE=Release and "
              "rerun bench_micro to regenerate the baseline")
        return 1
    if committed_ctx.get("library_build_type") == "debug":
        print("bench_check: WARNING: committed baseline links google-benchmark's "
              "debug build (harness overhead only; numbers remain comparable)")

    # Observability overhead is judged inside the committed file: both
    # variants ran back-to-back on the same machine, so the ratio is real.
    if OBS_OFF not in committed or OBS_ON not in committed:
        print(f"bench_check: REFUSED: committed {committed_path} lacks "
              f"{OBS_OFF} / {OBS_ON}; rerun bench_micro to regenerate")
        return 1
    obs_off, obs_on = committed[OBS_OFF], committed[OBS_ON]
    if obs_off <= 0 or obs_on < obs_off * (1.0 - OBS_OVERHEAD_LIMIT):
        overhead = (100.0 * (1.0 - obs_on / obs_off)) if obs_off > 0 else 100.0
        print(f"bench_check: OBSERVABILITY REGRESSION: tracing on costs "
              f"{overhead:.1f}% of knob-off throughput "
              f"({obs_on:.3g} vs {obs_off:.3g} ops/s, "
              f"limit {100 * OBS_OVERHEAD_LIMIT:.0f}%)")
        return 1

    failures = []
    for name, committed_ops in sorted(committed.items()):
        if name not in smoke:
            # Renamed or removed benchmark: the committed file is stale but
            # the tree didn't regress. Surface it without failing.
            print(f"bench_check: note: '{name}' in committed results but not "
                  f"in smoke run (stale committed entry?)")
            continue
        smoke_ops = smoke[name]
        if smoke_ops <= 0 or committed_ops > factor * smoke_ops:
            failures.append(("time", name, committed_ops, smoke_ops))

    # Allocation gate: lower is better, so the comparison flips.
    for name, committed_n in sorted(committed_allocs.items()):
        if name not in smoke_allocs:
            continue
        smoke_n = smoke_allocs[name]
        if smoke_n > factor * committed_n + ALLOC_SLACK:
            failures.append(("alloc", name, committed_n, smoke_n))

    for kind, name, committed_v, smoke_v in failures:
        if kind == "time":
            ratio = committed_v / smoke_v if smoke_v > 0 else float("inf")
            print(f"bench_check: REGRESSION {name}: committed {committed_v:.3g} "
                  f"ops/s vs smoke {smoke_v:.3g} ops/s ({ratio:.1f}x slower "
                  f"than committed, limit {factor}x)")
        else:
            print(f"bench_check: ALLOC REGRESSION {name}: committed "
                  f"{committed_v:.3g} allocs/query vs smoke {smoke_v:.3g} "
                  f"(limit {factor}x + {ALLOC_SLACK})")
    if failures:
        return 1
    print(f"bench_check: {len(committed)} committed benchmarks within "
          f"{factor}x of the smoke run "
          f"({len(committed_allocs)} with allocation gates)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
