# Empty dependencies file for bench_fig14_binding.
# This may be replaced when dependencies are built.
