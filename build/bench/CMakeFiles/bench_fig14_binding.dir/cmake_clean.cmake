file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_binding.dir/bench_fig14_binding.cc.o"
  "CMakeFiles/bench_fig14_binding.dir/bench_fig14_binding.cc.o.d"
  "bench_fig14_binding"
  "bench_fig14_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
