# Empty dependencies file for bench_fig13_transactions.
# This may be replaced when dependencies are built.
