file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_concurrency.dir/bench_fig11_concurrency.cc.o"
  "CMakeFiles/bench_fig11_concurrency.dir/bench_fig11_concurrency.cc.o.d"
  "bench_fig11_concurrency"
  "bench_fig11_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
