# Empty dependencies file for bench_fig15_maxcon.
# This may be replaced when dependencies are built.
