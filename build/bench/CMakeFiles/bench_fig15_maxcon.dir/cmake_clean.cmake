file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_maxcon.dir/bench_fig15_maxcon.cc.o"
  "CMakeFiles/bench_fig15_maxcon.dir/bench_fig15_maxcon.cc.o.d"
  "bench_fig15_maxcon"
  "bench_fig15_maxcon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_maxcon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
