file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_datasize.dir/bench_fig10_datasize.cc.o"
  "CMakeFiles/bench_fig10_datasize.dir/bench_fig10_datasize.cc.o.d"
  "bench_fig10_datasize"
  "bench_fig10_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
