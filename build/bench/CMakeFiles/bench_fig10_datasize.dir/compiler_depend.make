# Empty compiler generated dependencies file for bench_fig10_datasize.
# This may be replaced when dependencies are built.
