# Empty dependencies file for bench_fig12_servers.
# This may be replaced when dependencies are built.
