file(REMOVE_RECURSE
  "CMakeFiles/sphere_adaptor.dir/jdbc.cc.o"
  "CMakeFiles/sphere_adaptor.dir/jdbc.cc.o.d"
  "CMakeFiles/sphere_adaptor.dir/proxy.cc.o"
  "CMakeFiles/sphere_adaptor.dir/proxy.cc.o.d"
  "libsphere_adaptor.a"
  "libsphere_adaptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_adaptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
