file(REMOVE_RECURSE
  "libsphere_adaptor.a"
)
