# Empty dependencies file for sphere_adaptor.
# This may be replaced when dependencies are built.
