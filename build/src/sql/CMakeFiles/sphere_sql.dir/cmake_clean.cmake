file(REMOVE_RECURSE
  "CMakeFiles/sphere_sql.dir/ast.cc.o"
  "CMakeFiles/sphere_sql.dir/ast.cc.o.d"
  "CMakeFiles/sphere_sql.dir/condition.cc.o"
  "CMakeFiles/sphere_sql.dir/condition.cc.o.d"
  "CMakeFiles/sphere_sql.dir/dialect.cc.o"
  "CMakeFiles/sphere_sql.dir/dialect.cc.o.d"
  "CMakeFiles/sphere_sql.dir/lexer.cc.o"
  "CMakeFiles/sphere_sql.dir/lexer.cc.o.d"
  "CMakeFiles/sphere_sql.dir/parser.cc.o"
  "CMakeFiles/sphere_sql.dir/parser.cc.o.d"
  "CMakeFiles/sphere_sql.dir/token.cc.o"
  "CMakeFiles/sphere_sql.dir/token.cc.o.d"
  "libsphere_sql.a"
  "libsphere_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
