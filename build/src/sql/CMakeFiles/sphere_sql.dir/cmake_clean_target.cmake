file(REMOVE_RECURSE
  "libsphere_sql.a"
)
