# Empty compiler generated dependencies file for sphere_sql.
# This may be replaced when dependencies are built.
