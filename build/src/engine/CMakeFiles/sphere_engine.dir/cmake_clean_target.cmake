file(REMOVE_RECURSE
  "libsphere_engine.a"
)
