file(REMOVE_RECURSE
  "CMakeFiles/sphere_engine.dir/evaluator.cc.o"
  "CMakeFiles/sphere_engine.dir/evaluator.cc.o.d"
  "CMakeFiles/sphere_engine.dir/executor.cc.o"
  "CMakeFiles/sphere_engine.dir/executor.cc.o.d"
  "CMakeFiles/sphere_engine.dir/result_set.cc.o"
  "CMakeFiles/sphere_engine.dir/result_set.cc.o.d"
  "CMakeFiles/sphere_engine.dir/storage_node.cc.o"
  "CMakeFiles/sphere_engine.dir/storage_node.cc.o.d"
  "libsphere_engine.a"
  "libsphere_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
