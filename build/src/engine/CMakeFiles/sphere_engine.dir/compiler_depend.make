# Empty compiler generated dependencies file for sphere_engine.
# This may be replaced when dependencies are built.
