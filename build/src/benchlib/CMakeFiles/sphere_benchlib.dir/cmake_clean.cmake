file(REMOVE_RECURSE
  "CMakeFiles/sphere_benchlib.dir/metrics.cc.o"
  "CMakeFiles/sphere_benchlib.dir/metrics.cc.o.d"
  "CMakeFiles/sphere_benchlib.dir/setup.cc.o"
  "CMakeFiles/sphere_benchlib.dir/setup.cc.o.d"
  "CMakeFiles/sphere_benchlib.dir/sysbench.cc.o"
  "CMakeFiles/sphere_benchlib.dir/sysbench.cc.o.d"
  "CMakeFiles/sphere_benchlib.dir/tpcc.cc.o"
  "CMakeFiles/sphere_benchlib.dir/tpcc.cc.o.d"
  "libsphere_benchlib.a"
  "libsphere_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
