# Empty dependencies file for sphere_benchlib.
# This may be replaced when dependencies are built.
