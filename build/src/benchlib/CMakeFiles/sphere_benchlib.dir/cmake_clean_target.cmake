file(REMOVE_RECURSE
  "libsphere_benchlib.a"
)
