file(REMOVE_RECURSE
  "libsphere_governor.a"
)
