file(REMOVE_RECURSE
  "CMakeFiles/sphere_governor.dir/health.cc.o"
  "CMakeFiles/sphere_governor.dir/health.cc.o.d"
  "CMakeFiles/sphere_governor.dir/registry.cc.o"
  "CMakeFiles/sphere_governor.dir/registry.cc.o.d"
  "libsphere_governor.a"
  "libsphere_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
