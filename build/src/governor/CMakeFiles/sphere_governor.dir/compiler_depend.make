# Empty compiler generated dependencies file for sphere_governor.
# This may be replaced when dependencies are built.
