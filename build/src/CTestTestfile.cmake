# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sql")
subdirs("storage")
subdirs("engine")
subdirs("net")
subdirs("governor")
subdirs("core")
subdirs("transaction")
subdirs("distsql")
subdirs("adaptor")
subdirs("features")
subdirs("raft")
subdirs("baselines")
subdirs("benchlib")
