file(REMOVE_RECURSE
  "libsphere_common.a"
)
