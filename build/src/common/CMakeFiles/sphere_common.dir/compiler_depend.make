# Empty compiler generated dependencies file for sphere_common.
# This may be replaced when dependencies are built.
