file(REMOVE_RECURSE
  "CMakeFiles/sphere_common.dir/hash.cc.o"
  "CMakeFiles/sphere_common.dir/hash.cc.o.d"
  "CMakeFiles/sphere_common.dir/histogram.cc.o"
  "CMakeFiles/sphere_common.dir/histogram.cc.o.d"
  "CMakeFiles/sphere_common.dir/keygen.cc.o"
  "CMakeFiles/sphere_common.dir/keygen.cc.o.d"
  "CMakeFiles/sphere_common.dir/properties.cc.o"
  "CMakeFiles/sphere_common.dir/properties.cc.o.d"
  "CMakeFiles/sphere_common.dir/schema.cc.o"
  "CMakeFiles/sphere_common.dir/schema.cc.o.d"
  "CMakeFiles/sphere_common.dir/status.cc.o"
  "CMakeFiles/sphere_common.dir/status.cc.o.d"
  "CMakeFiles/sphere_common.dir/strings.cc.o"
  "CMakeFiles/sphere_common.dir/strings.cc.o.d"
  "CMakeFiles/sphere_common.dir/thread_pool.cc.o"
  "CMakeFiles/sphere_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/sphere_common.dir/value.cc.o"
  "CMakeFiles/sphere_common.dir/value.cc.o.d"
  "libsphere_common.a"
  "libsphere_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
