
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hash.cc" "src/common/CMakeFiles/sphere_common.dir/hash.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/hash.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/common/CMakeFiles/sphere_common.dir/histogram.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/histogram.cc.o.d"
  "/root/repo/src/common/keygen.cc" "src/common/CMakeFiles/sphere_common.dir/keygen.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/keygen.cc.o.d"
  "/root/repo/src/common/properties.cc" "src/common/CMakeFiles/sphere_common.dir/properties.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/properties.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/common/CMakeFiles/sphere_common.dir/schema.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/sphere_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/common/CMakeFiles/sphere_common.dir/strings.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/sphere_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/thread_pool.cc.o.d"
  "/root/repo/src/common/value.cc" "src/common/CMakeFiles/sphere_common.dir/value.cc.o" "gcc" "src/common/CMakeFiles/sphere_common.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
