file(REMOVE_RECURSE
  "CMakeFiles/sphere_distsql.dir/distsql.cc.o"
  "CMakeFiles/sphere_distsql.dir/distsql.cc.o.d"
  "libsphere_distsql.a"
  "libsphere_distsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_distsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
