# Empty dependencies file for sphere_distsql.
# This may be replaced when dependencies are built.
