file(REMOVE_RECURSE
  "libsphere_distsql.a"
)
