# Empty dependencies file for sphere_storage.
# This may be replaced when dependencies are built.
