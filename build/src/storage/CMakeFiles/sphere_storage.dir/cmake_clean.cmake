file(REMOVE_RECURSE
  "CMakeFiles/sphere_storage.dir/database.cc.o"
  "CMakeFiles/sphere_storage.dir/database.cc.o.d"
  "CMakeFiles/sphere_storage.dir/table.cc.o"
  "CMakeFiles/sphere_storage.dir/table.cc.o.d"
  "CMakeFiles/sphere_storage.dir/txn.cc.o"
  "CMakeFiles/sphere_storage.dir/txn.cc.o.d"
  "libsphere_storage.a"
  "libsphere_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
