file(REMOVE_RECURSE
  "libsphere_storage.a"
)
