file(REMOVE_RECURSE
  "libsphere_raft.a"
)
