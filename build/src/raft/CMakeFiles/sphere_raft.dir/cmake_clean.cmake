file(REMOVE_RECURSE
  "CMakeFiles/sphere_raft.dir/raft.cc.o"
  "CMakeFiles/sphere_raft.dir/raft.cc.o.d"
  "libsphere_raft.a"
  "libsphere_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
