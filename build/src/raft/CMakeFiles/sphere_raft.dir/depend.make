# Empty dependencies file for sphere_raft.
# This may be replaced when dependencies are built.
