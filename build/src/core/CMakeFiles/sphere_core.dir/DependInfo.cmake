
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm.cc" "src/core/CMakeFiles/sphere_core.dir/algorithm.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/algorithm.cc.o.d"
  "/root/repo/src/core/execute.cc" "src/core/CMakeFiles/sphere_core.dir/execute.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/execute.cc.o.d"
  "/root/repo/src/core/hint.cc" "src/core/CMakeFiles/sphere_core.dir/hint.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/hint.cc.o.d"
  "/root/repo/src/core/merge.cc" "src/core/CMakeFiles/sphere_core.dir/merge.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/merge.cc.o.d"
  "/root/repo/src/core/metadata.cc" "src/core/CMakeFiles/sphere_core.dir/metadata.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/metadata.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/core/CMakeFiles/sphere_core.dir/rewrite.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/rewrite.cc.o.d"
  "/root/repo/src/core/route.cc" "src/core/CMakeFiles/sphere_core.dir/route.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/route.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/sphere_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/rule.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/sphere_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/sphere_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sphere_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sphere_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sphere_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sphere_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
