file(REMOVE_RECURSE
  "CMakeFiles/sphere_core.dir/algorithm.cc.o"
  "CMakeFiles/sphere_core.dir/algorithm.cc.o.d"
  "CMakeFiles/sphere_core.dir/execute.cc.o"
  "CMakeFiles/sphere_core.dir/execute.cc.o.d"
  "CMakeFiles/sphere_core.dir/hint.cc.o"
  "CMakeFiles/sphere_core.dir/hint.cc.o.d"
  "CMakeFiles/sphere_core.dir/merge.cc.o"
  "CMakeFiles/sphere_core.dir/merge.cc.o.d"
  "CMakeFiles/sphere_core.dir/metadata.cc.o"
  "CMakeFiles/sphere_core.dir/metadata.cc.o.d"
  "CMakeFiles/sphere_core.dir/rewrite.cc.o"
  "CMakeFiles/sphere_core.dir/rewrite.cc.o.d"
  "CMakeFiles/sphere_core.dir/route.cc.o"
  "CMakeFiles/sphere_core.dir/route.cc.o.d"
  "CMakeFiles/sphere_core.dir/rule.cc.o"
  "CMakeFiles/sphere_core.dir/rule.cc.o.d"
  "CMakeFiles/sphere_core.dir/runtime.cc.o"
  "CMakeFiles/sphere_core.dir/runtime.cc.o.d"
  "libsphere_core.a"
  "libsphere_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
