file(REMOVE_RECURSE
  "libsphere_core.a"
)
