# Empty compiler generated dependencies file for sphere_core.
# This may be replaced when dependencies are built.
