# Empty compiler generated dependencies file for sphere_baselines.
# This may be replaced when dependencies are built.
