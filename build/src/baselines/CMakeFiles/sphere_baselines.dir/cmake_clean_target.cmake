file(REMOVE_RECURSE
  "libsphere_baselines.a"
)
