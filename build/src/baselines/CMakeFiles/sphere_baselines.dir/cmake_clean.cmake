file(REMOVE_RECURSE
  "CMakeFiles/sphere_baselines.dir/aurora.cc.o"
  "CMakeFiles/sphere_baselines.dir/aurora.cc.o.d"
  "CMakeFiles/sphere_baselines.dir/naive_merge.cc.o"
  "CMakeFiles/sphere_baselines.dir/naive_merge.cc.o.d"
  "CMakeFiles/sphere_baselines.dir/raftdb.cc.o"
  "CMakeFiles/sphere_baselines.dir/raftdb.cc.o.d"
  "CMakeFiles/sphere_baselines.dir/simple_middleware.cc.o"
  "CMakeFiles/sphere_baselines.dir/simple_middleware.cc.o.d"
  "CMakeFiles/sphere_baselines.dir/system.cc.o"
  "CMakeFiles/sphere_baselines.dir/system.cc.o.d"
  "libsphere_baselines.a"
  "libsphere_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
