# Empty compiler generated dependencies file for sphere_transaction.
# This may be replaced when dependencies are built.
