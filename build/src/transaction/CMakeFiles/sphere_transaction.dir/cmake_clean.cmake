file(REMOVE_RECURSE
  "CMakeFiles/sphere_transaction.dir/base_coordinator.cc.o"
  "CMakeFiles/sphere_transaction.dir/base_coordinator.cc.o.d"
  "CMakeFiles/sphere_transaction.dir/manager.cc.o"
  "CMakeFiles/sphere_transaction.dir/manager.cc.o.d"
  "CMakeFiles/sphere_transaction.dir/types.cc.o"
  "CMakeFiles/sphere_transaction.dir/types.cc.o.d"
  "CMakeFiles/sphere_transaction.dir/xa_log.cc.o"
  "CMakeFiles/sphere_transaction.dir/xa_log.cc.o.d"
  "libsphere_transaction.a"
  "libsphere_transaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_transaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
