file(REMOVE_RECURSE
  "libsphere_transaction.a"
)
