file(REMOVE_RECURSE
  "CMakeFiles/sphere_features.dir/aes.cc.o"
  "CMakeFiles/sphere_features.dir/aes.cc.o.d"
  "CMakeFiles/sphere_features.dir/encrypt.cc.o"
  "CMakeFiles/sphere_features.dir/encrypt.cc.o.d"
  "CMakeFiles/sphere_features.dir/guard.cc.o"
  "CMakeFiles/sphere_features.dir/guard.cc.o.d"
  "CMakeFiles/sphere_features.dir/readwrite.cc.o"
  "CMakeFiles/sphere_features.dir/readwrite.cc.o.d"
  "CMakeFiles/sphere_features.dir/scaling.cc.o"
  "CMakeFiles/sphere_features.dir/scaling.cc.o.d"
  "CMakeFiles/sphere_features.dir/shadow.cc.o"
  "CMakeFiles/sphere_features.dir/shadow.cc.o.d"
  "libsphere_features.a"
  "libsphere_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
