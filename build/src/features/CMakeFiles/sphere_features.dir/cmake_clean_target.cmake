file(REMOVE_RECURSE
  "libsphere_features.a"
)
