
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/aes.cc" "src/features/CMakeFiles/sphere_features.dir/aes.cc.o" "gcc" "src/features/CMakeFiles/sphere_features.dir/aes.cc.o.d"
  "/root/repo/src/features/encrypt.cc" "src/features/CMakeFiles/sphere_features.dir/encrypt.cc.o" "gcc" "src/features/CMakeFiles/sphere_features.dir/encrypt.cc.o.d"
  "/root/repo/src/features/guard.cc" "src/features/CMakeFiles/sphere_features.dir/guard.cc.o" "gcc" "src/features/CMakeFiles/sphere_features.dir/guard.cc.o.d"
  "/root/repo/src/features/readwrite.cc" "src/features/CMakeFiles/sphere_features.dir/readwrite.cc.o" "gcc" "src/features/CMakeFiles/sphere_features.dir/readwrite.cc.o.d"
  "/root/repo/src/features/scaling.cc" "src/features/CMakeFiles/sphere_features.dir/scaling.cc.o" "gcc" "src/features/CMakeFiles/sphere_features.dir/scaling.cc.o.d"
  "/root/repo/src/features/shadow.cc" "src/features/CMakeFiles/sphere_features.dir/shadow.cc.o" "gcc" "src/features/CMakeFiles/sphere_features.dir/shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sphere_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sphere_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sphere_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sphere_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sphere_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
