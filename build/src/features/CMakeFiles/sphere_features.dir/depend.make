# Empty dependencies file for sphere_features.
# This may be replaced when dependencies are built.
