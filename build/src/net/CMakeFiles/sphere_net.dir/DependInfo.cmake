
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/sphere_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/sphere_net.dir/packet.cc.o.d"
  "/root/repo/src/net/pool.cc" "src/net/CMakeFiles/sphere_net.dir/pool.cc.o" "gcc" "src/net/CMakeFiles/sphere_net.dir/pool.cc.o.d"
  "/root/repo/src/net/remote.cc" "src/net/CMakeFiles/sphere_net.dir/remote.cc.o" "gcc" "src/net/CMakeFiles/sphere_net.dir/remote.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/sphere_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sphere_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sphere_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
