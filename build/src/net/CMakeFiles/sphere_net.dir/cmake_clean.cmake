file(REMOVE_RECURSE
  "CMakeFiles/sphere_net.dir/packet.cc.o"
  "CMakeFiles/sphere_net.dir/packet.cc.o.d"
  "CMakeFiles/sphere_net.dir/pool.cc.o"
  "CMakeFiles/sphere_net.dir/pool.cc.o.d"
  "CMakeFiles/sphere_net.dir/remote.cc.o"
  "CMakeFiles/sphere_net.dir/remote.cc.o.d"
  "libsphere_net.a"
  "libsphere_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sphere_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
