# Empty dependencies file for sphere_net.
# This may be replaced when dependencies are built.
