file(REMOVE_RECURSE
  "libsphere_net.a"
)
