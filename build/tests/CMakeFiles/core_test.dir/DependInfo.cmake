
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/algorithm_test.cc" "tests/CMakeFiles/core_test.dir/core/algorithm_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/algorithm_test.cc.o.d"
  "/root/repo/tests/core/metadata_rule_test.cc" "tests/CMakeFiles/core_test.dir/core/metadata_rule_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/metadata_rule_test.cc.o.d"
  "/root/repo/tests/core/rewrite_test.cc" "tests/CMakeFiles/core_test.dir/core/rewrite_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rewrite_test.cc.o.d"
  "/root/repo/tests/core/route_test.cc" "tests/CMakeFiles/core_test.dir/core/route_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/route_test.cc.o.d"
  "/root/repo/tests/core/runtime_test.cc" "tests/CMakeFiles/core_test.dir/core/runtime_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/runtime_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sphere_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sphere_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sphere_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sphere_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sphere_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
