# Empty compiler generated dependencies file for adaptor_test.
# This may be replaced when dependencies are built.
