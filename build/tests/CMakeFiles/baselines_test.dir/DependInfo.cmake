
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/baselines_test.cc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o" "gcc" "tests/CMakeFiles/baselines_test.dir/baselines/baselines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/sphere_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptor/CMakeFiles/sphere_adaptor.dir/DependInfo.cmake"
  "/root/repo/build/src/distsql/CMakeFiles/sphere_distsql.dir/DependInfo.cmake"
  "/root/repo/build/src/transaction/CMakeFiles/sphere_transaction.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sphere_core.dir/DependInfo.cmake"
  "/root/repo/build/src/governor/CMakeFiles/sphere_governor.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/sphere_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sphere_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sphere_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sphere_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sphere_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
