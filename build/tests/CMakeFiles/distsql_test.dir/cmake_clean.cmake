file(REMOVE_RECURSE
  "CMakeFiles/distsql_test.dir/distsql/distsql_test.cc.o"
  "CMakeFiles/distsql_test.dir/distsql/distsql_test.cc.o.d"
  "distsql_test"
  "distsql_test.pdb"
  "distsql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distsql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
