# Empty dependencies file for distsql_test.
# This may be replaced when dependencies are built.
