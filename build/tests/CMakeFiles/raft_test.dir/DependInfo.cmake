
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/raft/raft_test.cc" "tests/CMakeFiles/raft_test.dir/raft/raft_test.cc.o" "gcc" "tests/CMakeFiles/raft_test.dir/raft/raft_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raft/CMakeFiles/sphere_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sphere_net.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/sphere_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sphere_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/sphere_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sphere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
