# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/governor_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/transaction_test[1]_include.cmake")
include("/root/repo/build/tests/adaptor_test[1]_include.cmake")
include("/root/repo/build/tests/distsql_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/benchlib_test[1]_include.cmake")
