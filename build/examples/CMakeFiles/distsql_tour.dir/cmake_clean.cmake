file(REMOVE_RECURSE
  "CMakeFiles/distsql_tour.dir/distsql_tour.cpp.o"
  "CMakeFiles/distsql_tour.dir/distsql_tour.cpp.o.d"
  "distsql_tour"
  "distsql_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distsql_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
