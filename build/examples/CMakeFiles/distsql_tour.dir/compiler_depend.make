# Empty compiler generated dependencies file for distsql_tour.
# This may be replaced when dependencies are built.
