# Empty dependencies file for governance_scaling.
# This may be replaced when dependencies are built.
