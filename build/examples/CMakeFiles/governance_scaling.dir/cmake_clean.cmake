file(REMOVE_RECURSE
  "CMakeFiles/governance_scaling.dir/governance_scaling.cpp.o"
  "CMakeFiles/governance_scaling.dir/governance_scaling.cpp.o.d"
  "governance_scaling"
  "governance_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governance_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
