file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_orders.dir/ecommerce_orders.cpp.o"
  "CMakeFiles/ecommerce_orders.dir/ecommerce_orders.cpp.o.d"
  "ecommerce_orders"
  "ecommerce_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
