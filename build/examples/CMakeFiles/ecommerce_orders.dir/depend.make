# Empty dependencies file for ecommerce_orders.
# This may be replaced when dependencies are built.
