// Reproduces Fig. 11: scalability with request concurrency (sysbench
// Read Write).
//
// Paper's qualitative result: TPS rises with thread count and then
// saturates; 99T stays flat at low concurrency and climbs sharply past the
// saturation knee (~200 threads there, earlier here on one host). SSJ leads
// at every concurrency.

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

int main() {
  PrintHeader("Fig. 11 — different concurrency",
              "TPS saturates with more threads while 99T shoots up past the "
              "knee; SSJ on top for all thread counts");

  ClusterSpec spec;
  spec.data_sources = 4;
  spec.tables_per_source = 1;  // paper: 10 per source. Scaled so the scatter
  // width equals the raftdb baseline's region count — on the single
  // measurement core, scatter CPU is not amortized across 32 vCores as in
  // the paper's testbed (EXPERIMENTS.md).
  spec.network = BenchNetwork();
  spec.max_connections_per_query = 8;

  SysbenchConfig config;
  config.table_size = 8000;

  SphereCluster ss(spec, "MS");
  if (!ss.SetupSysbench(config).ok()) return 1;
  baselines::RaftDbOptions tidb_options;
  tidb_options.name = "TiDB-like";
  RaftDbCluster tidb(tidb_options, spec);
  if (!tidb.SetupSysbench(config).ok()) return 1;

  TablePrinter table({"Threads", "System", "TPS", "AvgT(ms)", "90T(ms)",
                      "99T(ms)", "err"});
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    BenchOptions options = DefaultBenchOptions();
    options.threads = threads;
    std::vector<std::pair<std::string, baselines::SqlSystem*>> systems = {
        {"SSJ_MS", ss.jdbc()}, {"SSP_MS", ss.proxy()}, {"TiDB", tidb.system()}};
    for (auto& [label, system] : systems) {
      BenchResult r = RunBenchmark(
          system, "Read Write", options,
          [&](baselines::SqlSession* session, Rng* rng) {
            return SysbenchTransaction(session, SysbenchScenario::kReadWrite,
                                       config, rng);
          });
      table.AddRow({std::to_string(threads), label, TablePrinter::Fmt(r.tps, 0),
                    TablePrinter::Fmt(r.avg_ms), TablePrinter::Fmt(r.p90_ms),
                    TablePrinter::Fmt(r.p99_ms), std::to_string(r.errors)});
    }
  }
  table.Print();
  return 0;
}
