// Reproduces Fig. 15: the effect of MaxCon (maxConnectionsSizePerQuery) on a
// single-threaded multi-shard range query.
//
// Paper's qualitative result: performance improves as MaxCon grows from 1 to
// ~5 (routed SQLs execute concurrently instead of queueing on one
// connection), then flattens — the bottleneck moves to the data sources and
// the network. Low MaxCon also forces connection-strictly mode (memory
// merger); high MaxCon enables memory-strictly mode (stream merger).

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

int main() {
  PrintHeader("Fig. 15 — effects of MaxCon",
              "TPS rises from MaxCon 1 to ~5, then plateaus; 99T mirrors it");

  ClusterSpec spec;
  spec.data_sources = 2;
  spec.tables_per_source = 5;  // a full-range query fans out into 10 SQLs
  spec.network = BenchNetwork();
  // Make each routed SQL latency-dominated (disk/network bound, as in the
  // paper's testbed) so concurrency across connections is what matters.
  spec.node_delay_us = 400;

  SysbenchConfig config;
  config.table_size = 5000;

  SphereCluster ss(spec, "MS");
  if (!ss.SetupSysbench(config).ok()) return 1;

  TablePrinter table({"MaxCon", "System", "Mode", "TPS", "AvgT(ms)",
                      "99T(ms)", "err"});
  for (int max_con : {1, 2, 3, 5, 8, 10}) {
    ss.data_source()->runtime()->SetMaxConnectionsPerQuery(max_con);
    for (auto [label, system] :
         {std::pair<const char*, baselines::SqlSystem*>{"SSJ_MS", ss.jdbc()},
          std::pair<const char*, baselines::SqlSystem*>{"SSP_MS", ss.proxy()}}) {
      BenchOptions options = DefaultBenchOptions();
      options.threads = 1;  // paper: one thread to isolate the MaxCon effect
      BenchResult r = RunBenchmark(
          system, "range", options,
          [&](baselines::SqlSession* session, Rng* rng) {
            // A wide range that touches every shard.
            int64_t lo = rng->Uniform(1, config.table_size / 2);
            auto res = session->Execute(
                "SELECT SUM(k) FROM sbtest WHERE id BETWEEN ? AND ?",
                {Value(lo), Value(lo + config.table_size / 2 - 1)});
            return res.ok() ? Status::OK() : res.status();
          });
      const char* mode =
          ss.data_source()->runtime()->last_connection_mode() ==
                  core::ConnectionMode::kMemoryStrictly
              ? "MEMORY_STRICTLY"
              : "CONNECTION_STRICTLY";
      table.AddRow({std::to_string(max_con), label, mode,
                    TablePrinter::Fmt(r.tps, 0), TablePrinter::Fmt(r.avg_ms),
                    TablePrinter::Fmt(r.p99_ms), std::to_string(r.errors)});
    }
  }
  table.Print();
  return 0;
}
