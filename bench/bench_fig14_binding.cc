// Reproduces Fig. 14: the effect of binding tables on a two-table join.
//
// Paper's qualitative result: joining binding tables is about 10x faster
// than joining "common" (non-binding) tables — the binding route sends one
// pairwise join per shard while the cartesian route crosses every pair of
// actual tables within each data source.

#include "bench/bench_common.h"
#include "common/strings.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

namespace {

/// Builds a cluster where both join tables have 20 shards spread 10-per-node
/// over 2 nodes: a full binding join routes 20 pairwise units, a cartesian
/// join 2 * 10 * 10 = 200 — the ~10x of the paper.
std::unique_ptr<SphereCluster> BuildCluster(bool binding, int64_t rows) {
  ClusterSpec spec;
  spec.data_sources = 2;
  spec.tables_per_source = 10;
  spec.network = BenchNetwork();
  spec.max_connections_per_query = 32;
  auto cluster = std::make_unique<SphereCluster>(spec, "MS");

  core::ShardingRuleConfig rule;
  rule.default_data_source = "ds_0";
  for (const char* table : {"t_user", "t_order"}) {
    core::TableRuleConfig t;
    t.logic_table = table;
    t.auto_resources = {"ds_0", "ds_1"};
    t.auto_sharding_count = 20;
    t.table_strategy.columns = {"uid"};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", "20");
    rule.tables.push_back(std::move(t));
  }
  if (binding) rule.binding_groups.push_back({"t_user", "t_order"});
  if (!cluster->data_source()->SetRule(std::move(rule)).ok()) return nullptr;

  auto session = cluster->jdbc()->Connect();
  if (!session
           ->Execute("CREATE TABLE t_user (uid BIGINT PRIMARY KEY, "
                     "name VARCHAR(32))")
           .ok()) {
    return nullptr;
  }
  if (!session
           ->Execute("CREATE TABLE t_order (oid BIGINT PRIMARY KEY, "
                     "uid BIGINT, amount DOUBLE)")
           .ok()) {
    return nullptr;
  }
  for (int64_t uid = 0; uid < rows; uid += 50) {
    std::string users = "INSERT INTO t_user (uid, name) VALUES ";
    std::string orders = "INSERT INTO t_order (oid, uid, amount) VALUES ";
    for (int64_t i = uid; i < uid + 50 && i < rows; ++i) {
      if (i > uid) {
        users += ", ";
        orders += ", ";
      }
      users += StrFormat("(%lld, 'u%lld')", static_cast<long long>(i),
                         static_cast<long long>(i));
      orders += StrFormat("(%lld, %lld, %lld.0)", static_cast<long long>(i),
                          static_cast<long long>(i), static_cast<long long>(i));
    }
    if (!session->Execute(users).ok()) return nullptr;
    if (!session->Execute(orders).ok()) return nullptr;
  }
  return cluster;
}

}  // namespace

int main() {
  PrintHeader("Fig. 14 — effects of binding table",
              "binding-table joins ~10x the TPS of common (cartesian) joins");

  constexpr int64_t kRows = 4000;
  auto binding_cluster = BuildCluster(/*binding=*/true, kRows);
  auto common_cluster = BuildCluster(/*binding=*/false, kRows);
  if (binding_cluster == nullptr || common_cluster == nullptr) return 1;

  BenchOptions options = DefaultBenchOptions();
  options.threads = 8;

  TablePrinter table({"Tables", "TPS", "AvgT(ms)", "90T(ms)", "99T(ms)", "err"});
  struct Case {
    const char* label;
    SphereCluster* cluster;
  } cases[] = {{"Binding", binding_cluster.get()},
               {"Common", common_cluster.get()}};
  for (const auto& c : cases) {
    BenchResult r = RunBenchmark(
        c.cluster->jdbc(), "join", options,
        [&](baselines::SqlSession* session, Rng* rng) {
          int64_t lo = rng->Uniform(0, kRows - 50);
          auto res = session->Execute(
              "SELECT u.name, o.amount FROM t_user u JOIN t_order o "
              "ON u.uid = o.uid WHERE u.uid BETWEEN ? AND ?",
              {Value(lo), Value(lo + 39)});
          return res.ok() ? Status::OK() : res.status();
        });
    r.system = c.label;
    table.AddRow({c.label, TablePrinter::Fmt(r.tps, 0),
                  TablePrinter::Fmt(r.avg_ms), TablePrinter::Fmt(r.p90_ms),
                  TablePrinter::Fmt(r.p99_ms), std::to_string(r.errors)});
  }
  table.Print();
  return 0;
}
