// Reproduces Fig. 9: TPC-C comparison — overall TPS and the accumulated
// 90th-percentile response time over the five transaction profiles.
//
// Paper's qualitative result: SSJ has the highest TPS and the smallest
// accumulated 90T; SSP trails Vitess/Citus slightly; TiDB accumulates the
// most time (its Delivery takes 1.61s). CRDB errored on native TPC-C.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "benchlib/tpcc.h"
#include "common/clock.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

namespace {

struct TpccRun {
  double tps = 0;
  double accumulated_90t_ms = 0;
  double profile_90t[5] = {0};
  int64_t errors = 0;
};

TpccRun RunTpcc(baselines::SqlSystem* system, const TpccConfig& config,
                const BenchOptions& options) {
  Histogram per_profile[5];
  std::atomic<int64_t> operations{0};
  std::atomic<int64_t> errors{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> recording{false};

  auto worker = [&](int thread_id) {
    auto session = system->Connect();
    Rng rng(options.seed + static_cast<uint64_t>(thread_id) * 1013);
    while (!stop.load(std::memory_order_relaxed)) {
      TpccProfile profile = TpccDrawProfile(&rng);
      int64_t start = NowMicros();
      Status st = TpccTransaction(session.get(), profile, config, &rng);
      int64_t elapsed = NowMicros() - start;
      if (recording.load(std::memory_order_relaxed)) {
        per_profile[static_cast<int>(profile)].Record(elapsed);
        operations.fetch_add(1, std::memory_order_relaxed);
        if (!st.ok()) errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < options.threads; ++t) threads.emplace_back(worker, t);
  SleepMicros(options.warmup_ms * 1000);
  recording = true;
  int64_t start = NowMicros();
  SleepMicros(options.duration_ms * 1000);
  recording = false;
  int64_t measured = NowMicros() - start;
  stop = true;
  for (auto& t : threads) t.join();

  TpccRun run;
  run.tps = static_cast<double>(operations.load()) * 1e6 /
            static_cast<double>(measured);
  run.errors = errors.load();
  for (int p = 0; p < 5; ++p) {
    run.profile_90t[p] = per_profile[p].PercentileMillis(90);
    run.accumulated_90t_ms += run.profile_90t[p];
  }
  return run;
}

}  // namespace

int main() {
  PrintHeader("Fig. 9 — TPC-C comparison",
              "TPS: SSJ highest, then Vitess/Citus ~ SSP, TiDB lowest TPS and "
              "largest accumulated 90T (Delivery-dominated)");

  ClusterSpec spec;
  spec.data_sources = 5;  // paper: 5 data sources, order_line 10x sharded
  spec.tables_per_source = 10;
  spec.network = BenchNetwork();
  spec.max_connections_per_query = 8;

  TpccConfig config;
  config.warehouses = 5;

  SphereCluster ss(spec, "MS");
  if (!ss.SetupTpcc(config).ok()) return 1;
  MiddlewareCluster vitess({"Vitess-like", 60}, spec);
  if (!vitess.SetupTpcc(config).ok()) return 1;
  MiddlewareCluster citus({"Citus-like", 75}, spec);
  if (!citus.SetupTpcc(config).ok()) return 1;
  baselines::RaftDbOptions tidb_options;
  tidb_options.name = "TiDB-like";
  RaftDbCluster tidb(tidb_options, spec);
  if (!tidb.SetupTpcc(config).ok()) return 1;

  BenchOptions options = DefaultBenchOptions();
  options.threads = 8;

  TablePrinter table({"System", "TPS", "acc.90T(ms)", "NewOrder", "Payment",
                      "OrderStatus", "Delivery", "StockLevel", "err"});
  std::vector<std::pair<std::string, baselines::SqlSystem*>> systems = {
      {"SSJ", ss.jdbc()},          {"SSP", ss.proxy()},
      {"Vitess", vitess.system()}, {"Citus", citus.system()},
      {"TiDB", tidb.system()},
  };
  for (auto& [label, system] : systems) {
    TpccRun run = RunTpcc(system, config, options);
    table.AddRow({label, TablePrinter::Fmt(run.tps, 0),
                  TablePrinter::Fmt(run.accumulated_90t_ms),
                  TablePrinter::Fmt(run.profile_90t[0]),
                  TablePrinter::Fmt(run.profile_90t[1]),
                  TablePrinter::Fmt(run.profile_90t[2]),
                  TablePrinter::Fmt(run.profile_90t[3]),
                  TablePrinter::Fmt(run.profile_90t[4]),
                  std::to_string(run.errors)});
  }
  table.Print();
  std::printf("(per-profile columns are 90th-percentile latencies in ms; "
              "acc.90T is their sum, the paper's reported metric)\n");
  return 0;
}
