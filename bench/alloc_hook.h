#ifndef SPHERE_BENCH_ALLOC_HOOK_H_
#define SPHERE_BENCH_ALLOC_HOOK_H_

#include <cstdint>

namespace sphere::bench {

/// Process-wide count of heap allocations (operator new calls) since start.
/// Backed by the global operator new/delete replacement in alloc_hook.cc,
/// which is linked into bench_micro only — production binaries and tests
/// keep the stock allocator.
uint64_t AllocationCount();

/// Diagnostic: while on, every counted allocation dumps a stack trace to
/// stderr (backtrace_symbols_fd, no allocation). Used with
/// SPHERE_ALLOC_TRACE=1 to pinpoint residual per-query allocation sites.
void SetAllocTrace(bool on);

}  // namespace sphere::bench

#endif  // SPHERE_BENCH_ALLOC_HOOK_H_
