// Reproduces Table III: distributed systems compared across the four
// sysbench scenarios (Point Select / Read Only / Write Only / Read Write),
// reporting TPS, AvgT and 99T.
//
// Paper's qualitative result to reproduce: SSJ-based systems win every
// scenario by a wide margin; SSP, Vitess, Citus and TiDB form the middle
// pack; CRDB trails. MySQL- and PostgreSQL-flavored deployments behave
// consistently.

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

namespace {

void RunScenario(SysbenchScenario scenario, const SysbenchConfig& config,
                 std::vector<std::pair<std::string, baselines::SqlSystem*>> systems) {
  BenchOptions options = DefaultBenchOptions();
  TablePrinter table({"System", "TPS", "AvgT(ms)", "90T(ms)", "99T(ms)", "err"});
  for (auto& [label, system] : systems) {
    BenchResult r = RunBenchmark(
        system, SysbenchScenarioName(scenario), options,
        [&](baselines::SqlSession* session, Rng* rng) {
          return SysbenchTransaction(session, scenario, config, rng);
        });
    r.system = label;
    AddResultRow(&table, r);
  }
  std::printf("--- scenario: %s ---\n", SysbenchScenarioName(scenario));
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("Table III — comparison with distributed systems (sysbench)",
              "SSJ >> {SSP, Vitess, Citus, TiDB} > CRDB in every scenario; "
              "e.g. Read Write TPS: SSJ_MS 19953, SSP_MS 13165, Vitess 11806, "
              "TiDB 12140, CRDB 3150");

  ClusterSpec spec;
  spec.data_sources = 4;
  spec.tables_per_source = 1;  // paper: 10 per source. Scaled so the scatter
  // width equals the raftdb baseline's region count — on the single
  // measurement core, scatter CPU is not amortized across 32 vCores as in
  // the paper's testbed (EXPERIMENTS.md).
  spec.network = BenchNetwork();
  spec.max_connections_per_query = 8;

  SysbenchConfig config;
  config.table_size = 8000;

  // ShardingSphere deployments, MySQL and PostgreSQL flavored.
  SphereCluster ss_ms(spec, "MS");
  if (!ss_ms.SetupSysbench(config).ok()) return 1;
  SphereCluster ss_pg(spec, "PG");
  if (!ss_pg.SetupSysbench(config).ok()) return 1;

  // Proxy middleware baselines.
  MiddlewareCluster vitess({"Vitess-like", 60}, spec);
  if (!vitess.SetupSysbench(config).ok()) return 1;
  MiddlewareCluster citus({"Citus-like", 75}, spec);
  if (!citus.SetupSysbench(config).ok()) return 1;

  // New-architecture databases.
  baselines::RaftDbOptions tidb_options;
  tidb_options.name = "TiDB-like";
  tidb_options.quorum_reads = false;
  RaftDbCluster tidb(tidb_options, spec);
  if (!tidb.SetupSysbench(config).ok()) return 1;

  baselines::RaftDbOptions crdb_options;
  crdb_options.name = "CRDB-like";
  crdb_options.quorum_reads = true;  // pays consistency rounds on reads
  crdb_options.sql_layer_overhead_us = 40;
  RaftDbCluster crdb(crdb_options, spec);
  if (!crdb.SetupSysbench(config).ok()) return 1;

  std::vector<std::pair<std::string, baselines::SqlSystem*>> systems = {
      {"SSJ_MS", ss_ms.jdbc()},   {"SSP_MS", ss_ms.proxy()},
      {"Vitess", vitess.system()}, {"TiDB", tidb.system()},
      {"CRDB", crdb.system()},    {"SSJ_PG", ss_pg.jdbc()},
      {"SSP_PG", ss_pg.proxy()},  {"Citus", citus.system()},
  };

  for (SysbenchScenario scenario :
       {SysbenchScenario::kPointSelect, SysbenchScenario::kReadOnly,
        SysbenchScenario::kWriteOnly, SysbenchScenario::kReadWrite}) {
    RunScenario(scenario, config, systems);
  }
  return 0;
}
