#ifndef SPHERE_BENCH_BENCH_COMMON_H_
#define SPHERE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchlib/metrics.h"
#include "benchlib/setup.h"

namespace sphere::benchlib {

/// Shared bench-wide scaling: SPHERE_BENCH_FAST=1 shrinks durations for smoke
/// runs; SPHERE_BENCH_LONG=1 stretches them for low-noise numbers.
inline BenchOptions DefaultBenchOptions() {
  BenchOptions options;
  options.threads = 8;
  options.duration_ms = 700;
  options.warmup_ms = 120;
  if (const char* fast = std::getenv("SPHERE_BENCH_FAST"); fast && fast[0] == '1') {
    options.duration_ms = 250;
    options.warmup_ms = 30;
  }
  if (const char* slow = std::getenv("SPHERE_BENCH_LONG"); slow && slow[0] == '1') {
    options.duration_ms = 3000;
    options.warmup_ms = 500;
  }
  return options;
}

/// The simulated LAN used by all macro benches (one value so comparisons are
/// apples-to-apples).
inline net::NetworkConfig BenchNetwork() {
  net::NetworkConfig network;
  network.hop_latency_us = 40;
  network.per_kb_latency_us = 4;
  return network;
}

inline void PrintHeader(const char* title, const char* paper_note) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper reference: %s\n\n", paper_note);
}

}  // namespace sphere::benchlib

#endif  // SPHERE_BENCH_BENCH_COMMON_H_
