// Micro-benchmarks of the SQL engine stages (google-benchmark): parser,
// router, rewriter, merger, B+Tree, the deadlock-free connection acquisition,
// the statement cache hit/miss paths and the executor's scheduler dispatch.
// These back the DESIGN.md ablation notes with per-stage costs.
//
// Emits machine-readable results to BENCH_micro.json (ops/sec per benchmark)
// unless the caller passes its own --benchmark_out.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench/alloc_hook.h"
#include "common/arena.h"
#include "common/thread_pool.h"
#include "core/merge.h"
#include "engine/pipeline.h"
#include "engine/row_batch.h"
#include "engine/topk.h"
#include "core/rewrite.h"
#include "core/route.h"
#include "core/rule.h"
#include "core/runtime.h"
#include "engine/storage_node.h"
#include "net/pool.h"
#include "sql/parser.h"
#include "storage/btree.h"

namespace sphere {
namespace {

const char* kPointSQL = "SELECT c FROM sbtest WHERE id = 42";
const char* kComplexSQL =
    "SELECT age, COUNT(*), AVG(score) FROM t_user "
    "WHERE uid BETWEEN 10 AND 500 AND age > 18 GROUP BY age ORDER BY age "
    "LIMIT 10, 20";

void BM_ParsePointSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::ParseSQL(kPointSQL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParsePointSelect);

void BM_ParseComplexSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::ParseSQL(kComplexSQL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseComplexSelect);

std::unique_ptr<core::ShardingRule> MakeRule(int shards) {
  core::ShardingRuleConfig config;
  core::TableRuleConfig t;
  t.logic_table = "sbtest";
  t.auto_resources = {"ds_0", "ds_1", "ds_2", "ds_3"};
  t.auto_sharding_count = shards;
  t.table_strategy.columns = {"id"};
  t.table_strategy.algorithm_type = "MOD";
  t.table_strategy.props.Set("sharding-count", std::to_string(shards));
  config.tables.push_back(std::move(t));
  auto rule = core::ShardingRule::Build(std::move(config));
  return std::move(rule).value();
}

void BM_RoutePointQuery(benchmark::State& state) {
  auto rule = MakeRule(static_cast<int>(state.range(0)));
  auto stmt = sql::ParseSQL(kPointSQL).value();
  core::RouteEngine engine(rule.get());
  for (auto _ : state) {
    auto r = engine.Route(*stmt, {});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RoutePointQuery)->Arg(4)->Arg(40)->Arg(400);

void BM_RouteAndRewriteScatter(benchmark::State& state) {
  auto rule = MakeRule(40);
  auto stmt = sql::ParseSQL("SELECT SUM(k) FROM sbtest WHERE k > 5").value();
  core::RouteEngine router(rule.get());
  core::RewriteEngine rewriter;
  for (auto _ : state) {
    auto route = router.Route(*stmt, {});
    auto rewritten = rewriter.Rewrite(*stmt, route.value(), {});
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_RouteAndRewriteScatter);

void BM_MergeOrderedStreams(benchmark::State& state) {
  int sources = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ArenaVector<engine::ExecResult> partials;
    for (int s = 0; s < sources; ++s) {
      std::vector<Row> rows;
      for (int i = 0; i < 100; ++i) {
        rows.push_back({Value(static_cast<int64_t>(i * sources + s))});
      }
      partials.push_back(engine::ExecResult::Query(
          std::make_unique<engine::VectorResultSet>(
              std::vector<std::string>{"id"}, std::move(rows))));
    }
    core::MergeContext ctx;
    ctx.is_select = true;
    ctx.labels = {"id"};
    ctx.visible_columns = 1;
    ctx.order_by.push_back(core::MergeKey{0, "id", false});
    state.ResumeTiming();
    core::MergeEngine merger;
    auto merged = merger.Merge(std::move(partials), ctx);
    Row row;
    while (merged.value().result_set->Next(&row)) {
      benchmark::DoNotOptimize(row);
    }
  }
}
BENCHMARK(BM_MergeOrderedStreams)->Arg(4)->Arg(16)->Arg(64);

void BM_BTreeInsert(benchmark::State& state) {
  storage::BPlusTree<int64_t> tree;
  int64_t i = 0;
  for (auto _ : state) {
    tree.Insert(Value(i), i);
    ++i;
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  storage::BPlusTree<int64_t> tree;
  int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert(Value(i), i);
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(Value(k++ % n)));
  }
  state.SetLabel("height=" + std::to_string(tree.Height()));
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PoolAcquireManyVsSingle(benchmark::State& state) {
  engine::StorageNode node("ds_0");
  net::LatencyModel network(net::NetworkConfig::Zero());
  net::ConnectionPool pool(&node, &network, 16);
  bool batched = state.range(0) != 0;
  for (auto _ : state) {
    if (batched) {
      auto leases = pool.AcquireMany(8);
      benchmark::DoNotOptimize(leases);
    } else {
      auto lease = pool.Acquire();
      benchmark::DoNotOptimize(lease);
    }
  }
  state.SetLabel(batched ? "AcquireMany(8) [deadlock-free batch]"
                         : "Acquire() [single]");
}
BENCHMARK(BM_PoolAcquireManyVsSingle)->Arg(0)->Arg(1);

// ---------- Hot-path pipeline: statement cache + executor scheduler ----------

/// Four zero-latency storage nodes attached to a runtime, sbtest MOD-sharded
/// by id into 4 tables, one row per shard.
struct MiniCluster {
  explicit MiniCluster(size_t cache_capacity) {
    core::RuntimeConfig config;
    config.statement_cache_capacity = cache_capacity;
    runtime = std::make_unique<core::ShardingRuntime>(
        config, net::NetworkConfig::Zero());
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(std::make_unique<engine::StorageNode>(
          "ds_" + std::to_string(i)));
      auto st = runtime->AttachNode(nodes.back()->name(), nodes.back().get());
      if (!st.ok()) std::abort();
    }
    core::ShardingRuleConfig rule;
    core::TableRuleConfig t;
    t.logic_table = "sbtest";
    t.auto_resources = {"ds_0", "ds_1", "ds_2", "ds_3"};
    t.auto_sharding_count = 4;
    t.table_strategy.columns = {"id"};
    t.table_strategy.algorithm_type = "MOD";
    t.table_strategy.props.Set("sharding-count", "4");
    rule.tables.push_back(std::move(t));
    if (!runtime->SetRule(std::move(rule)).ok()) std::abort();
    if (!runtime->Execute("CREATE TABLE sbtest (id BIGINT PRIMARY KEY, "
                          "k BIGINT, c VARCHAR(120))").ok()) {
      std::abort();
    }
    for (int id = 40; id < 44; ++id) {
      if (!runtime->Execute("INSERT INTO sbtest (id, k, c) VALUES (" +
                            std::to_string(id) + ", 1, 'row')").ok()) {
        std::abort();
      }
    }
  }

  std::unique_ptr<core::ShardingRuntime> runtime;
  std::vector<std::unique_ptr<engine::StorageNode>> nodes;
};

/// Full pipeline per iteration with the cache disabled: lex + parse + route +
/// rewrite + execute + merge. The baseline for BM_StatementCacheHit.
void BM_StatementCacheMiss(benchmark::State& state) {
  MiniCluster cluster(/*cache_capacity=*/0);
  for (auto _ : state) {
    auto r = cluster.runtime->Execute(kPointSQL);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("cache off: parse+route+rewrite every call");
}
BENCHMARK(BM_StatementCacheMiss);

/// Steady-state cache hit: the AST and the routed plan are reused, the
/// iteration pays only cache lookup + execute + merge.
void BM_StatementCacheHit(benchmark::State& state) {
  MiniCluster cluster(/*cache_capacity=*/2048);
  auto warm = cluster.runtime->Execute(kPointSQL);  // admit + publish the plan
  if (!warm.ok()) std::abort();
  for (auto _ : state) {
    auto r = cluster.runtime->Execute(kPointSQL);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  CacheStats s = cluster.runtime->statement_cache_stats();
  state.SetLabel("hits=" + std::to_string(s.hits) +
                 " misses=" + std::to_string(s.misses));
}
BENCHMARK(BM_StatementCacheHit);

/// Scatter SELECT across all 4 data sources: executor dispatch on the shared
/// scheduler pool (Arg(1), the default) vs the legacy spawn-per-statement
/// baseline (Arg(0)).
void BM_ExecutorDispatch(benchmark::State& state) {
  MiniCluster cluster(/*cache_capacity=*/2048);
  bool pooled = state.range(0) != 0;
  cluster.runtime->set_executor_pool(pooled ? SharedThreadPool() : nullptr);
  const char* scatter = "SELECT COUNT(*) FROM sbtest";
  auto warm = cluster.runtime->Execute(scatter);
  if (!warm.ok()) std::abort();
  for (auto _ : state) {
    auto r = cluster.runtime->Execute(scatter);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pooled ? "shared scheduler pool (no thread creation)"
                        : "baseline: spawn+join threads per statement");
}
BENCHMARK(BM_ExecutorDispatch)->Arg(0)->Arg(1);

// ---------- Streaming scan-to-merge pipeline ----------

/// Bulk-loads `rows` extra sbtest rows (ids from 1000 up) with a 64-byte
/// payload so row copies have a visible cost.
void LoadSbtest(MiniCluster* cluster, int rows) {
  const int kPerStmt = 500;
  const std::string payload(64, 'x');
  for (int base = 0; base < rows; base += kPerStmt) {
    std::string sql = "INSERT INTO sbtest (id, k, c) VALUES ";
    int n = std::min(kPerStmt, rows - base);
    for (int i = 0; i < n; ++i) {
      int id = 1000 + base + i;
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(id) + ", " + std::to_string(id % 97) +
             ", '" + payload + "')";
    }
    if (!cluster->runtime->Execute(sql).ok()) std::abort();
  }
}

/// Wide fan-out SELECT drained through the merge stack: the row-at-a-time
/// copy-per-row loop this PR replaced (Arg 0) vs the batched NextBatch path
/// that moves whole row runs (Arg 1). items/sec = rows/sec.
void BM_ScanToMergeFanout(benchmark::State& state) {
  MiniCluster cluster(/*cache_capacity=*/2048);
  LoadSbtest(&cluster, 10000);
  bool batched = state.range(0) != 0;
  int64_t drained = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto r = cluster.runtime->Execute("SELECT c FROM sbtest");
    if (!r.ok()) std::abort();
    std::vector<Row> rows;
    state.ResumeTiming();
    if (batched) {
      rows = engine::DrainResultSet(r->result_set.get());
    } else {
      Row row;
      while (r->result_set->Next(&row)) rows.push_back(row);
    }
    drained += static_cast<int64_t>(rows.size());
    benchmark::DoNotOptimize(rows);
    state.PauseTiming();
    // Free the drained rows and the shard buffers off the clock: the timed
    // region is the drain itself, not teardown.
    rows = std::vector<Row>();
    r->result_set.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(drained);
  state.SetLabel(batched ? "NextBatch: bulk row moves"
                         : "Next: virtual call + copy per row");
}
BENCHMARK(BM_ScanToMergeFanout)->Arg(0)->Arg(1);

/// One populated storage node for the single-table streaming benchmarks.
struct BigNode {
  explicit BigNode(int rows) {
    node = std::make_unique<engine::StorageNode>("ds_0");
    session = node->OpenSession();
    if (!session->Execute("CREATE TABLE big (id BIGINT PRIMARY KEY, "
                          "k BIGINT, c VARCHAR(80))", {}).ok()) {
      std::abort();
    }
    const int kPerStmt = 500;
    const std::string payload(48, 'y');
    for (int base = 0; base < rows; base += kPerStmt) {
      std::string sql = "INSERT INTO big (id, k, c) VALUES ";
      int n = std::min(kPerStmt, rows - base);
      for (int i = 0; i < n; ++i) {
        int id = base + i;
        if (i > 0) sql += ", ";
        // Multiplicative hash scatters k so ORDER BY k is a real sort.
        sql += "(" + std::to_string(id) + ", " +
               std::to_string((id * 2654435761u) % 1000000) + ", '" + payload +
               "')";
      }
      if (!session->Execute(sql, {}).ok()) std::abort();
    }
  }

  std::unique_ptr<engine::StorageNode> node;
  std::unique_ptr<engine::StorageNode::Session> session;
};

/// Bounded top-k (TopKStable) vs full stable_sort + truncate over the same
/// keyed rows — the executor's ORDER BY ... LIMIT inner loop.
void BM_TopKVsSortTruncate(benchmark::State& state) {
  bool topk = state.range(0) != 0;
  const size_t kN = 100000, kK = 10;
  std::vector<std::pair<Row, Row>> source;
  source.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    auto k = static_cast<int64_t>((i * 2654435761u) % 1000000);
    source.emplace_back(Row{Value(k)}, Row{Value(static_cast<int64_t>(i))});
  }
  auto less = [](const std::pair<Row, Row>& a, const std::pair<Row, Row>& b) {
    return a.first[0].Compare(b.first[0]) < 0;
  };
  for (auto _ : state) {
    state.PauseTiming();
    auto rows = source;
    state.ResumeTiming();
    if (topk) {
      engine::TopKStable(&rows, kK, less);
    } else {
      std::stable_sort(rows.begin(), rows.end(), less);
      rows.resize(kK);
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kN));
  state.SetLabel(topk ? "bounded heap, O(n log k)"
                      : "stable_sort + truncate, O(n log n)");
}
BENCHMARK(BM_TopKVsSortTruncate)->Arg(0)->Arg(1);

/// End-to-end top-k ORDER BY LIMIT on one node: materializing baseline
/// (Arg 0) vs the streaming scan cursor + bounded heap (Arg 1).
void BM_TopKOrderBy(benchmark::State& state) {
  BigNode big(50000);
  bool streaming = state.range(0) != 0;
  engine::ScopedStreamingMode mode(streaming);
  for (auto _ : state) {
    auto r = big.session->Execute(
        "SELECT id, k FROM big ORDER BY k LIMIT 10", {});
    if (!r.ok()) std::abort();
    auto rows = engine::DrainResultSet(r->result_set.get());
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(streaming ? "streaming: scan cursor + bounded top-k heap"
                           : "baseline: materialize all rows first");
}
BENCHMARK(BM_TopKOrderBy)->Arg(0)->Arg(1);

/// Paginated SELECT with a large offset: the baseline projects every row and
/// erases the front; the streaming path skips unprojected rows and stops at
/// offset+count.
void BM_PaginatedSelect(benchmark::State& state) {
  BigNode big(50000);
  bool streaming = state.range(0) != 0;
  engine::ScopedStreamingMode mode(streaming);
  for (auto _ : state) {
    auto r = big.session->Execute("SELECT id, c FROM big LIMIT 45000, 10", {});
    if (!r.ok()) std::abort();
    auto rows = engine::DrainResultSet(r->result_set.get());
    if (rows.size() != 10) std::abort();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(streaming ? "streaming: skip offset unprojected, stop at 45010"
                           : "baseline: project 50000 rows, erase 45000");
}
BENCHMARK(BM_PaginatedSelect)->Arg(0)->Arg(1);

// ---------- Write-path fast lane (DESIGN.md §10) ----------

/// Parameterized single-row INSERT through the full sharding pipeline.
/// Arg(0): legacy remote-text lane — the split inlines literals, so every
/// iteration renders a unique physical text and the node pays a fresh parse.
/// Arg(1): structured pass-through — the rewritten AST and the per-unit
/// parameter slice ship in-process; no text is rendered, the node never
/// parses. Inserted rows are swept out of band every 1024 iterations.
void BM_DmlPassThroughVsReparse(benchmark::State& state) {
  MiniCluster cluster(/*cache_capacity=*/2048);
  bool structured = state.range(0) != 0;
  engine::ScopedDmlPassThrough passthrough(structured);
  engine::ScopedDmlParamBinding binding(structured);
  int64_t id = 1000;
  for (auto _ : state) {
    auto r = cluster.runtime->Execute(
        "INSERT INTO sbtest (id, k, c) VALUES (?, ?, 'p')",
        {Value(id), Value(id)});
    if (!r.ok()) std::abort();
    if ((++id & 1023) == 0) {
      state.PauseTiming();
      if (!cluster.runtime->Execute("DELETE FROM sbtest WHERE id >= 1000").ok()) {
        std::abort();
      }
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  int64_t misses = 0;
  for (const auto& n : cluster.nodes) misses += n->parse_cache_misses();
  state.SetLabel(structured
                     ? "structured: AST pass-through, node parses=" +
                           std::to_string(misses)
                     : "legacy: inline + ToSQL + node parses=" +
                           std::to_string(misses));
}
BENCHMARK(BM_DmlPassThroughVsReparse)->Arg(0)->Arg(1);

/// Point UPDATE over 100k rows, WHERE on column k. Arg(1): k carries a
/// secondary index, so the point-DML path resolves the row set in O(log n)
/// under one writer section. Arg(0): no index — the same statement degrades
/// to a full table scan, the cost every point UPDATE paid before indexes
/// (and what WHERE on any unindexed column still pays).
void BM_PointUpdateIndexVsScan(benchmark::State& state) {
  BigNode big(100000);
  bool indexed = state.range(0) != 0;
  if (indexed &&
      !big.session->Execute("CREATE INDEX idx_k ON big (k)", {}).ok()) {
    std::abort();
  }
  uint32_t i = 0;
  for (auto _ : state) {
    uint32_t id = (++i * 7919u) % 100000u;
    auto k = static_cast<int64_t>((id * 2654435761u) % 1000000u);
    auto r = big.session->Execute("UPDATE big SET c = 'z' WHERE k = ?",
                                  {Value(k)});
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(indexed ? "index lookup, O(log n) row resolution"
                         : "baseline: full scan of 100k rows per UPDATE");
}
BENCHMARK(BM_PointUpdateIndexVsScan)->Arg(0)->Arg(1);

/// Prepared INSERT (+ cleanup DELETE) on the text lanes. Arg(1): cached-text
/// — parameter binding keeps `?` in the emitted text, so every node sees the
/// same string and hits its statement cache after the first parse. Arg(0):
/// legacy inlining — each iteration's values make a unique text, a guaranteed
/// parse-cache miss per statement.
void BM_PreparedInsertCacheHit(benchmark::State& state) {
  MiniCluster cluster(/*cache_capacity=*/2048);
  bool cached_text = state.range(0) != 0;
  engine::ScopedDmlPassThrough no_passthrough(false);
  engine::ScopedDmlParamBinding binding(cached_text);
  int64_t id = 1000;
  for (auto _ : state) {
    auto ins = cluster.runtime->Execute(
        "INSERT INTO sbtest (id, k, c) VALUES (?, ?, 'p')",
        {Value(id), Value(id)});
    if (!ins.ok()) std::abort();
    auto del = cluster.runtime->Execute("DELETE FROM sbtest WHERE id = ?",
                                        {Value(id)});
    if (!del.ok()) std::abort();
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
  int64_t hits = 0, misses = 0;
  for (const auto& n : cluster.nodes) {
    hits += n->parse_cache_hits();
    misses += n->parse_cache_misses();
  }
  state.SetLabel((cached_text ? std::string("cached text: ")
                              : std::string("inlined text: ")) +
                 "node cache hits=" + std::to_string(hits) +
                 " misses=" + std::to_string(misses));
}
BENCHMARK(BM_PreparedInsertCacheHit)->Arg(0)->Arg(1);

// ---------- Memory discipline (DESIGN.md §12) ----------

/// Sets state.counters["allocs_per_query"] from a before/after reading of the
/// global allocation counter. Call Start() after warmup, Stop() right after
/// the timed loop.
class AllocMeter {
 public:
  void Start() { start_ = bench::AllocationCount(); }
  void Stop(benchmark::State& state) {
    auto delta = static_cast<double>(bench::AllocationCount() - start_);
    state.counters["allocs_per_query"] =
        benchmark::Counter(delta / static_cast<double>(state.iterations()));
  }

 private:
  uint64_t start_ = 0;
};

/// Steady-state point SELECT on the cache-hit path. Arg(1): arena statements
/// + pooled batches (the default); Arg(0): both knobs off — the malloc
/// baseline. allocs_per_query is the acceptance metric: near zero with the
/// knobs on.
void BM_PointSelectAllocs(benchmark::State& state) {
  bool disciplined = state.range(0) != 0;
  engine::ScopedArenaStatements arena(disciplined);
  engine::ScopedPooledBatches pooled(disciplined);
  MiniCluster cluster(/*cache_capacity=*/2048);
  for (int i = 0; i < 64; ++i) {  // warm the caches, arena chunks and pools
    if (!cluster.runtime->Execute(kPointSQL).ok()) std::abort();
  }
  if (std::getenv("SPHERE_ALLOC_TRACE") != nullptr) {
    // Diagnostic run: backtrace every residual allocation in one steady-state
    // query, then continue normally (traces go to stderr).
    bench::SetAllocTrace(true);
    (void)cluster.runtime->Execute(kPointSQL);
    bench::SetAllocTrace(false);
  }
  AllocMeter meter;
  meter.Start();
  for (auto _ : state) {
    auto r = cluster.runtime->Execute(kPointSQL);
    benchmark::DoNotOptimize(r);
  }
  meter.Stop(state);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(disciplined ? "arena + pooled rows" : "malloc baseline");
}
BENCHMARK(BM_PointSelectAllocs)->Arg(0)->Arg(1);

/// Fan-out SELECT drained through the merge stack with the drained batch
/// recycled after consumption — the steady-state drain loop an adaptor runs.
/// Per-row string copies dominate the baseline; pooled rows reuse their
/// string capacity in place.
void BM_FanoutDrainAllocs(benchmark::State& state) {
  bool disciplined = state.range(0) != 0;
  engine::ScopedArenaStatements arena(disciplined);
  engine::ScopedPooledBatches pooled(disciplined);
  MiniCluster cluster(/*cache_capacity=*/2048);
  LoadSbtest(&cluster, 10000);
  int64_t drained = 0;
  auto run_once = [&] {
    auto r = cluster.runtime->Execute("SELECT c FROM sbtest");
    if (!r.ok()) std::abort();
    std::vector<Row> rows = engine::DrainResultSet(r->result_set.get());
    drained += static_cast<int64_t>(rows.size());
    benchmark::DoNotOptimize(rows);
    // Close the recycle loop the way an adaptor does: consumed rows return
    // to the pool (no-op when pooling is off).
    engine::RecycleRows(std::move(rows));
  };
  for (int i = 0; i < 4; ++i) run_once();  // warm pools to steady state
  AllocMeter meter;
  meter.Start();
  for (auto _ : state) run_once();
  meter.Stop(state);
  state.SetItemsProcessed(drained);
  state.SetLabel(disciplined ? "arena + pooled rows" : "malloc baseline");
}
BENCHMARK(BM_FanoutDrainAllocs)->Arg(0)->Arg(1);

/// Observability overhead on the hottest committed path (cache-hit point
/// SELECT): Arg(0) runs with the observability knob off (statement scopes and
/// ScopedSpans must compile down to a thread-local read), Arg(1) with the
/// default sampling interval. The bench_check.py gate holds Arg(1) within 5%
/// of Arg(0).
void BM_ObservabilityOverhead(benchmark::State& state) {
  bool observability = state.range(0) != 0;
  engine::ScopedObservability knob(observability);
  engine::ScopedTraceSampling sampling(
      engine::PipelineConfig::kDefaultTraceSampleInterval);
  MiniCluster cluster(/*cache_capacity=*/2048);
  auto warm = cluster.runtime->Execute(kPointSQL);
  if (!warm.ok()) std::abort();
  for (auto _ : state) {
    auto r = cluster.runtime->Execute(kPointSQL);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(observability
                     ? "tracing on, default sampling (1/" +
                           std::to_string(
                               engine::PipelineConfig::kDefaultTraceSampleInterval) +
                           ")"
                     : "observability off: thread-local read only");
}
BENCHMARK(BM_ObservabilityOverhead)->Arg(0)->Arg(1);

/// Cached-plan AST copy: the per-execution clone of a cached statement tree.
/// Arg(0): plain heap clone (one operator new per node); Arg(1): clone inside
/// an arena scope — the same Clone() code path bump-allocates every node in
/// one pass through the ArenaManaged base.
void BM_PlanCloneVsArenaCopy(benchmark::State& state) {
  bool arena_copy = state.range(0) != 0;
  auto stmt = sql::ParseSQL(kComplexSQL).value();
  Arena arena;
  AllocMeter meter;
  meter.Start();
  for (auto _ : state) {
    if (arena_copy) {
      ArenaScope scope(&arena);
      auto clone = stmt->Clone();
      benchmark::DoNotOptimize(clone);
      clone.reset();  // delete is a no-op for arena nodes
      arena.Reset();
    } else {
      auto clone = stmt->Clone();
      benchmark::DoNotOptimize(clone);
    }
  }
  meter.Stop(state);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(arena_copy ? "arena: bump-allocated nodes, wholesale reset"
                            : "heap: operator new/delete per node");
}
BENCHMARK(BM_PlanCloneVsArenaCopy)->Arg(0)->Arg(1);

}  // namespace
}  // namespace sphere

// BENCHMARK_MAIN with a default JSON reporter: results land in
// BENCH_micro.json (ops/sec via items_per_second) for machines to diff,
// unless the invoker passes an explicit --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  // Stamp how THIS binary was compiled (the library's own build type is
  // already emitted as "library_build_type"). tools/bench_check.py refuses
  // committed baselines whose project_build_type is not "release" — a debug
  // baseline would let real regressions hide inside the debug slowdown.
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("project_build_type", "release");
#else
  benchmark::AddCustomContext("project_build_type", "debug");
#endif
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
