// Micro-benchmarks of the SQL engine stages (google-benchmark): parser,
// router, rewriter, merger, B+Tree and the deadlock-free connection
// acquisition. These back the DESIGN.md ablation notes with per-stage costs.

#include <benchmark/benchmark.h>

#include "core/merge.h"
#include "core/rewrite.h"
#include "core/route.h"
#include "core/rule.h"
#include "net/pool.h"
#include "sql/parser.h"
#include "storage/btree.h"

namespace sphere {
namespace {

const char* kPointSQL = "SELECT c FROM sbtest WHERE id = 42";
const char* kComplexSQL =
    "SELECT age, COUNT(*), AVG(score) FROM t_user "
    "WHERE uid BETWEEN 10 AND 500 AND age > 18 GROUP BY age ORDER BY age "
    "LIMIT 10, 20";

void BM_ParsePointSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::ParseSQL(kPointSQL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParsePointSelect);

void BM_ParseComplexSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::ParseSQL(kComplexSQL);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseComplexSelect);

std::unique_ptr<core::ShardingRule> MakeRule(int shards) {
  core::ShardingRuleConfig config;
  core::TableRuleConfig t;
  t.logic_table = "sbtest";
  t.auto_resources = {"ds_0", "ds_1", "ds_2", "ds_3"};
  t.auto_sharding_count = shards;
  t.table_strategy.columns = {"id"};
  t.table_strategy.algorithm_type = "MOD";
  t.table_strategy.props.Set("sharding-count", std::to_string(shards));
  config.tables.push_back(std::move(t));
  auto rule = core::ShardingRule::Build(std::move(config));
  return std::move(rule).value();
}

void BM_RoutePointQuery(benchmark::State& state) {
  auto rule = MakeRule(static_cast<int>(state.range(0)));
  auto stmt = sql::ParseSQL(kPointSQL).value();
  core::RouteEngine engine(rule.get());
  for (auto _ : state) {
    auto r = engine.Route(*stmt, {});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RoutePointQuery)->Arg(4)->Arg(40)->Arg(400);

void BM_RouteAndRewriteScatter(benchmark::State& state) {
  auto rule = MakeRule(40);
  auto stmt = sql::ParseSQL("SELECT SUM(k) FROM sbtest WHERE k > 5").value();
  core::RouteEngine router(rule.get());
  core::RewriteEngine rewriter;
  for (auto _ : state) {
    auto route = router.Route(*stmt, {});
    auto rewritten = rewriter.Rewrite(*stmt, route.value(), {});
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_RouteAndRewriteScatter);

void BM_MergeOrderedStreams(benchmark::State& state) {
  int sources = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<engine::ExecResult> partials;
    for (int s = 0; s < sources; ++s) {
      std::vector<Row> rows;
      for (int i = 0; i < 100; ++i) {
        rows.push_back({Value(static_cast<int64_t>(i * sources + s))});
      }
      partials.push_back(engine::ExecResult::Query(
          std::make_unique<engine::VectorResultSet>(
              std::vector<std::string>{"id"}, std::move(rows))));
    }
    core::MergeContext ctx;
    ctx.is_select = true;
    ctx.labels = {"id"};
    ctx.visible_columns = 1;
    ctx.order_by.push_back(core::MergeKey{0, "id", false});
    state.ResumeTiming();
    core::MergeEngine merger;
    auto merged = merger.Merge(std::move(partials), ctx);
    Row row;
    while (merged.value().result_set->Next(&row)) {
      benchmark::DoNotOptimize(row);
    }
  }
}
BENCHMARK(BM_MergeOrderedStreams)->Arg(4)->Arg(16)->Arg(64);

void BM_BTreeInsert(benchmark::State& state) {
  storage::BPlusTree<int64_t> tree;
  int64_t i = 0;
  for (auto _ : state) {
    tree.Insert(Value(i), i);
    ++i;
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  storage::BPlusTree<int64_t> tree;
  int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert(Value(i), i);
  int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(Value(k++ % n)));
  }
  state.SetLabel("height=" + std::to_string(tree.Height()));
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PoolAcquireManyVsSingle(benchmark::State& state) {
  engine::StorageNode node("ds_0");
  net::LatencyModel network(net::NetworkConfig::Zero());
  net::ConnectionPool pool(&node, &network, 16);
  bool batched = state.range(0) != 0;
  for (auto _ : state) {
    if (batched) {
      auto leases = pool.AcquireMany(8);
      benchmark::DoNotOptimize(leases);
    } else {
      auto lease = pool.Acquire();
      benchmark::DoNotOptimize(lease);
    }
  }
  state.SetLabel(batched ? "AcquireMany(8) [deadlock-free batch]"
                         : "Acquire() [single]");
}
BENCHMARK(BM_PoolAcquireManyVsSingle)->Arg(0)->Arg(1);

}  // namespace
}  // namespace sphere

BENCHMARK_MAIN();
