// Reproduces Fig. 12: scalability with the number of data servers
// (sysbench Read Write).
//
// Paper's qualitative result: SSJ's TPS keeps growing with more data
// servers; SSP grows a little and then flattens (the single proxy becomes
// the bottleneck); TiDB needs at least 3 servers and trails.

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

int main() {
  PrintHeader("Fig. 12 — different data servers",
              "SSJ TPS grows with servers; SSP flattens after ~3 (proxy "
              "bottleneck); TiDB from 3 servers on, below both");

  SysbenchConfig config;
  config.table_size = 8000;

  TablePrinter table({"Servers", "System", "TPS", "AvgT(ms)", "90T(ms)",
                      "99T(ms)", "err"});
  for (int servers : {1, 2, 3, 4, 6}) {
    ClusterSpec spec;
    spec.data_sources = servers;
    // The dataset (12 shards in total) is fixed; adding servers spreads the
    // same shards wider — the paper's experiment. tables_per_source stays
    // integral for every server count in the sweep.
    spec.tables_per_source = 12 / servers;
    spec.network = BenchNetwork();
    spec.max_connections_per_query = 8;
    // Per-statement storage cost with a bounded per-node disk queue: the
    // benefit of more servers is more IO slots serving the same shard set.
    spec.node_delay_us = 600;
    spec.node_io_slots = 2;

    SphereCluster ss(spec, "MS");
    if (!ss.SetupSysbench(config).ok()) return 1;
    // One proxy process with a fixed worker pool fronts the whole cluster:
    // the bottleneck the paper names for SSP's flattening curve.
    ss.proxy_server()->set_worker_capacity(14);

    std::vector<std::pair<std::string, baselines::SqlSystem*>> systems = {
        {"SSJ_MS", ss.jdbc()}, {"SSP_MS", ss.proxy()}};

    std::unique_ptr<RaftDbCluster> tidb;
    if (servers >= 3) {  // paper: TiDB needs >= 3 data servers for Raft
      baselines::RaftDbOptions tidb_options;
      tidb_options.name = "TiDB-like";
      tidb = std::make_unique<RaftDbCluster>(tidb_options, spec);
      if (!tidb->SetupSysbench(config).ok()) return 1;
      systems.emplace_back("TiDB", tidb->system());
    }

    BenchOptions options = DefaultBenchOptions();
    options.threads = 16;
    // Single-server transactions queue on 2 IO slots and take ~300ms; give
    // every cell a window long enough to observe them.
    options.duration_ms = std::max<int64_t>(options.duration_ms, 900);
    options.warmup_ms = std::max<int64_t>(options.warmup_ms, 300);
    for (auto& [label, system] : systems) {
      BenchResult r = RunBenchmark(
          system, "Read Write", options,
          [&](baselines::SqlSession* session, Rng* rng) {
            return SysbenchTransaction(session, SysbenchScenario::kReadWrite,
                                       config, rng);
          });
      table.AddRow({std::to_string(servers), label, TablePrinter::Fmt(r.tps, 0),
                    TablePrinter::Fmt(r.avg_ms), TablePrinter::Fmt(r.p90_ms),
                    TablePrinter::Fmt(r.p99_ms), std::to_string(r.errors)});
    }
  }
  table.Print();
  return 0;
}
