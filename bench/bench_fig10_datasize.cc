// Reproduces Fig. 10: scalability with data size (sysbench Read Write).
//
// Paper's qualitative result: all systems stay relatively stable up to
// medium sizes, then TPS drops / 99T rises at the largest size (deeper
// index trees -> more storage accesses); SSJ stays on top throughout.

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

int main() {
  PrintHeader("Fig. 10 — different data sizes",
              "stable TPS from 20M to 100M rows, degradation at 200M; "
              "SSJ best at every size (rows scaled 1:1000 here)");

  BenchOptions options = DefaultBenchOptions();
  options.threads = 8;
  // Large loads leave allocator/page-cache churn behind; warm until it fades.
  options.warmup_ms = std::max<int64_t>(options.warmup_ms, 500);
  TablePrinter table({"Rows", "System", "TPS", "AvgT(ms)", "90T(ms)",
                      "99T(ms)", "err"});

  for (int64_t rows : {20000, 50000, 100000, 200000}) {
    ClusterSpec spec;
    spec.data_sources = 4;
    spec.tables_per_source = 1;  // paper: 10 per source. Scaled so the scatter
  // width equals the raftdb baseline's region count — on the single
  // measurement core, scatter CPU is not amortized across 32 vCores as in
  // the paper's testbed (EXPERIMENTS.md).
    spec.network = BenchNetwork();
    spec.max_connections_per_query = 8;

    SysbenchConfig config;
    config.table_size = rows;

    SphereCluster ss(spec, "MS");
    if (!ss.SetupSysbench(config).ok()) return 1;
    baselines::RaftDbOptions tidb_options;
    tidb_options.name = "TiDB-like";
    RaftDbCluster tidb(tidb_options, spec);
    if (!tidb.SetupSysbench(config).ok()) return 1;

    std::vector<std::pair<std::string, baselines::SqlSystem*>> systems = {
        {"SSJ_MS", ss.jdbc()}, {"SSP_MS", ss.proxy()}, {"TiDB", tidb.system()}};
    for (auto& [label, system] : systems) {
      BenchResult r = RunBenchmark(
          system, "Read Write", options,
          [&](baselines::SqlSession* session, Rng* rng) {
            return SysbenchTransaction(session, SysbenchScenario::kReadWrite,
                                       config, rng);
          });
      table.AddRow({std::to_string(rows), label, TablePrinter::Fmt(r.tps, 0),
                    TablePrinter::Fmt(r.avg_ms), TablePrinter::Fmt(r.p90_ms),
                    TablePrinter::Fmt(r.p99_ms), std::to_string(r.errors)});
    }
  }
  table.Print();
  return 0;
}
