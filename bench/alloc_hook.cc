// Global operator new/delete replacement that counts every heap allocation
// the process makes. Linked into bench_micro ONLY (see bench/CMakeLists.txt):
// replacing the global allocator is a whole-program decision, and the
// production libraries must keep the stock one. The replacement is
// deliberately boring — malloc + a relaxed atomic bump — so the counter
// perturbs the timing benchmarks as little as possible.
//
// Arena and pooled-row allocations do not pass through operator new (the
// arena bumps a pointer; the pool recycles), so AllocationCount() measures
// exactly what the memory-discipline layer is supposed to eliminate. Arena
// chunk growth does land here (the chunks come from the heap), which is the
// correct accounting: steady state should stop growing chunks too.

#include "bench/alloc_hook.h"

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace sphere::bench {

// Not in an anonymous namespace: the operator definitions below live outside
// this namespace and need qualified access.
std::atomic<uint64_t> g_allocations{0};
std::atomic<bool> g_trace{false};

void SetAllocTrace(bool on) { g_trace.store(on, std::memory_order_relaxed); }

namespace {

// Dump the current stack to stderr. backtrace_symbols_fd writes straight to
// the fd without allocating, so this is safe to call from inside the
// allocator; the thread_local guard stops backtrace()'s own lazy-init
// allocations from recursing.
void TraceAllocation() {
  static thread_local bool in_trace = false;
  if (in_trace) return;
  in_trace = true;
  void* frames[32];
  int n = backtrace(frames, 32);
  const char kHeader[] = "--- allocation ---\n";
  (void)!write(2, kHeader, sizeof(kHeader) - 1);
  backtrace_symbols_fd(frames, n, 2);
  in_trace = false;
}

}  // namespace

void* CountedAlloc(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) TraceAllocation();
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(size_t size, size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace sphere::bench

void* operator new(size_t size) { return sphere::bench::CountedAlloc(size); }
void* operator new[](size_t size) { return sphere::bench::CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  sphere::bench::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  sphere::bench::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(size_t size, std::align_val_t align) {
  return sphere::bench::CountedAllocAligned(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return sphere::bench::CountedAllocAligned(size, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
