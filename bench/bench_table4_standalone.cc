// Reproduces Table IV: standalone comparison on a single server, including
// the Aurora-like shared-storage baselines (sysbench Read Write).
//
// Paper's qualitative result: SSJ beats everything although it uses the same
// single server as MS/PG — sharding into 10 small tables beats one big
// table; Aurora beats the plain standalone databases (its storage fleet
// absorbs IO) but loses to SSJ; SSP pays the proxy and lands at the bottom.
//
// Substitution note: the in-memory engine has no buffer pool, so the
// big-table-vs-small-table IO gap is modeled with per-statement storage
// delays calibrated from the paper's own measured per-statement latencies
// (MS: 348ms/txn over ~16 statements -> ~2ms/stmt; Aurora ~1ms; the 10
// small hot tables ~0.1ms). SSJ shards by range over the dense ids, so
// point and range queries hit exactly one small table. See EXPERIMENTS.md.

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

int main() {
  PrintHeader("Table IV — comparison with standalone systems (sysbench)",
              "TPS: MS 574, PG 1287, AuroraMS 2043, AuroraPG ~2000, "
              "SSJ_MS 4751, SSJ_PG 3674, SSP ~380 (worst)");

  SysbenchConfig config;
  config.table_size = 20000;  // paper used 20M here (MS failed at 40M)

  ClusterSpec big_table_spec;
  big_table_spec.data_sources = 1;
  big_table_spec.network = BenchNetwork();
  big_table_spec.node_delay_us = 2000;

  ClusterSpec sharded_spec = big_table_spec;
  sharded_spec.tables_per_source = 10;
  sharded_spec.node_delay_us = 100;
  sharded_spec.max_connections_per_query = 8;
  sharded_spec.sysbench_algorithm = "BOUNDARY_RANGE";

  ClusterSpec aurora_spec = big_table_spec;
  aurora_spec.node_delay_us = 1000;

  SingleNodeCluster ms("MS", big_table_spec);
  if (!ms.SetupSysbench(config).ok()) return 1;
  SingleNodeCluster pg("PG", big_table_spec);
  if (!pg.SetupSysbench(config).ok()) return 1;

  SphereCluster ss_ms(sharded_spec, "MS");
  if (!ss_ms.SetupSysbench(config).ok()) return 1;
  SphereCluster ss_pg(sharded_spec, "PG");
  if (!ss_pg.SetupSysbench(config).ok()) return 1;

  MiddlewareCluster citus({"Citus-like", 75}, sharded_spec);
  if (!citus.SetupSysbench(config).ok()) return 1;

  AuroraCluster aurora_ms("AuroraMS", aurora_spec);
  if (!aurora_ms.SetupSysbench(config).ok()) return 1;
  AuroraCluster aurora_pg("AuroraPG", aurora_spec);
  if (!aurora_pg.SetupSysbench(config).ok()) return 1;

  std::vector<std::pair<std::string, baselines::SqlSystem*>> systems = {
      {"MS", ms.system()},          {"SSJ_MS", ss_ms.jdbc()},
      {"SSP_MS", ss_ms.proxy()},    {"AuroraMS", aurora_ms.system()},
      {"PG", pg.system()},          {"SSJ_PG", ss_pg.jdbc()},
      {"SSP_PG", ss_pg.proxy()},    {"AuroraPG", aurora_pg.system()},
      {"Citus", citus.system()},
  };

  BenchOptions options = DefaultBenchOptions();
  options.threads = 16;
  TablePrinter table({"System", "TPS", "AvgT(ms)", "90T(ms)", "99T(ms)", "err"});
  for (auto& [label, system] : systems) {
    BenchResult r = RunBenchmark(
        system, "Read Write", options,
        [&](baselines::SqlSession* session, Rng* rng) {
          return SysbenchTransaction(session, SysbenchScenario::kReadWrite,
                                     config, rng);
        });
    r.system = label;
    AddResultRow(&table, r);
  }
  table.Print();
  return 0;
}
