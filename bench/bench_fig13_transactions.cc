// Reproduces Fig. 13: the effect of the three distributed transaction types
// (sysbench Read Write on SSJ).
//
// Paper's qualitative result: LOCAL (1PC) is fastest; XA pays the prepare
// round (2PC) and comes second; BASE comes last for these short transactions
// — its TC round trips and image queries don't amortize, and results return
// synchronously.

#include "bench/bench_common.h"
#include "benchlib/sysbench.h"

using namespace sphere;           // NOLINT
using namespace sphere::benchlib; // NOLINT

namespace {

/// A JDBC session pinned to one transaction type.
class TypedJdbcSystem : public baselines::SqlSystem {
 public:
  TypedJdbcSystem(std::string name, adaptor::ShardingDataSource* ds,
                  transaction::TransactionType type)
      : name_(std::move(name)), ds_(ds), type_(type) {}

  const std::string& name() const override { return name_; }
  std::unique_ptr<baselines::SqlSession> Connect() override {
    return std::make_unique<Session>(ds_, type_);
  }

 private:
  class Session : public baselines::SqlSession {
   public:
    Session(adaptor::ShardingDataSource* ds, transaction::TransactionType type)
        : conn_(ds->GetConnection()) {
      (void)conn_->SetTransactionType(type);
    }
    Result<engine::ExecResult> Execute(
        std::string_view sql_text, const std::vector<Value>& params) override {
      return conn_->ExecuteSQL(sql_text, params);
    }

   private:
    std::unique_ptr<adaptor::ShardingConnection> conn_;
  };

  std::string name_;
  adaptor::ShardingDataSource* ds_;
  transaction::TransactionType type_;
};

}  // namespace

int main() {
  PrintHeader("Fig. 13 — effects of transaction types",
              "TPS: LOCAL > XA > BASE; 99T in the reverse order (short "
              "transactions cannot amortize BASE's coordination)");

  ClusterSpec spec;
  spec.data_sources = 4;
  spec.tables_per_source = 10;
  spec.network = BenchNetwork();
  spec.max_connections_per_query = 8;

  SysbenchConfig config;
  config.table_size = 8000;

  SphereCluster ss(spec, "MS");
  if (!ss.SetupSysbench(config).ok()) return 1;

  TablePrinter table({"Threads", "Type", "TPS", "AvgT(ms)", "90T(ms)",
                      "99T(ms)", "err"});
  for (int threads : {1, 4, 16, 64}) {
    for (auto type : {transaction::TransactionType::kLocal,
                      transaction::TransactionType::kXa,
                      transaction::TransactionType::kBase}) {
      TypedJdbcSystem system(transaction::TransactionTypeName(type),
                             ss.data_source(), type);
      BenchOptions options = DefaultBenchOptions();
      options.threads = threads;
      BenchResult r = RunBenchmark(
          &system, "Read Write", options,
          [&](baselines::SqlSession* session, Rng* rng) {
            return SysbenchTransaction(session, SysbenchScenario::kReadWrite,
                                       config, rng);
          });
      table.AddRow({std::to_string(threads),
                    transaction::TransactionTypeName(type),
                    TablePrinter::Fmt(r.tps, 0), TablePrinter::Fmt(r.avg_ms),
                    TablePrinter::Fmt(r.p90_ms), TablePrinter::Fmt(r.p99_ms),
                    std::to_string(r.errors)});
    }
  }
  table.Print();
  return 0;
}
